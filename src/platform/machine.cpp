#include "platform/machine.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace gpm {

namespace {

/**
 * Fold one launch's stats into the session counters. The per-launch
 * NVM tier deltas sum (over clean launches) to the model's observed
 * totals — the accounting identity test_telemetry checks.
 */
void
recordLaunchMetrics(telemetry::Session &s, const LaunchStats &st,
                    SimNs now)
{
    telemetry::Registry &r = s.metrics;
    r.add("sim.launches", 1);
    r.add("sim.blocks", st.blocks);
    r.add("sim.threads", st.threads);
    r.add("sim.hbm_bytes", st.hbm_bytes);
    r.add("sim.pm_payload_bytes", st.pm_payload_bytes);
    r.add("sim.pm_line_txns", st.pm_line_txns);
    r.add("sim.pm_line_bytes", st.pm_line_bytes);
    r.add("sim.pm_read_bytes", st.pm_read_bytes);
    r.add("sim.fences", st.fences);
    r.add("nvm.launch_seq_aligned_bytes", st.nvm.seq_aligned);
    r.add("nvm.launch_seq_unaligned_bytes", st.nvm.seq_unaligned);
    r.add("nvm.launch_random_bytes", st.nvm.random);
    r.gaugeAdd("sim.work_ops", st.work_ops);
    r.gaugeSet("sim.clock_ns", now);
}

} // namespace

Machine::Machine(const SimConfig &cfg, PlatformKind kind,
                 std::size_t pm_capacity, std::uint64_t seed)
    : cfg_(cfg), kind_(kind),
      pool_(pm_capacity, initialDomain(kind), seed),
      media_(makeMediaBackend(cfg_)), gpu_(cfg_, pool_, *media_),
      pcie_(cfg_), cpu_persist_(cfg_), fs_(cfg_)
{
}

void
Machine::ddioOff()
{
    // Writing the perfctrlsts_0 I/O register; only the GPM platform
    // actually moves the persistence boundary to the memory controller.
    if (kind_ == PlatformKind::Gpm)
        pool_.setDomain(PersistDomain::McDurable);
    advance(cfg_.syscall_ns);
}

void
Machine::ddioOn()
{
    if (kind_ == PlatformKind::Gpm)
        pool_.setDomain(PersistDomain::LlcVolatile);
    advance(cfg_.syscall_ns);
}

SimNs
Machine::fenceLatency() const
{
    return pool_.domain() == PersistDomain::McDurable ? cfg_.fence_mc_ns
                                                      : cfg_.fence_llc_ns;
}

double
Machine::effectiveGpuRate(std::uint64_t threads) const
{
    // Linear ramp up to full occupancy of the SIMD lanes.
    const double lanes = static_cast<double>(cfg_.num_sms) * 64.0;
    const double util =
        std::min(1.0, static_cast<double>(threads) / lanes);
    return cfg_.gpu_ops_per_ns * std::max(util, 1.0 / lanes);
}

Machine::~Machine()
{
    // Whole-run observed totals. Recorded at teardown so the identity
    // "sum of per-launch tier deltas == model totals" can be checked
    // from a snapshot alone (clean runs only; a crashed launch's
    // partial traffic reaches the model but not the launch counters).
    if (telemetry::Session *s = telemetry::Session::current()) {
        media_->closeRuns();
        const NvmTierBytes &b = media_->bytes();
        telemetry::Registry &r = s->metrics;
        r.add("nvm.observed_seq_aligned_bytes", b.seq_aligned);
        r.add("nvm.observed_seq_unaligned_bytes", b.seq_unaligned);
        r.add("nvm.observed_random_bytes", b.random);
        r.add("nvm.observed_write_txns", media_->writeTxns());
        r.add("nvm.observed_read_bytes", media_->readBytes());
        r.add("nvm.observed_read_ops", media_->readOps());
        // Backend-specific totals (per-DIMM tiers, DRAM cache hit /
        // miss / migration bytes) — empty for the default NvmModel, so
        // legacy snapshots are unchanged.
        std::vector<MediaCounter> media_counters;
        media_->appendCounters(media_counters);
        for (const MediaCounter &c : media_counters)
            r.add("media." + c.name, c.value);
        r.add("machine.pcie_write_bytes", pcie_write_bytes_);
        r.add("machine.persist_payload_bytes", persist_payload_);
        const PmPoolStats &ps = pool_.stats();
        r.add("pool.crashes", ps.crashes);
        r.add("pool.extents_drained", ps.extents_drained);
        r.add("pool.extents_merged", ps.extents_merged);
        r.add("pool.crash_sub_extents", ps.crash_sub_extents);
        r.add("pool.crash_survivors", ps.crash_survivors);
        r.gaugeAdd("machine.final_clock_ns", now_);
        r.add("machine.instances", 1);
    }
}

LaunchStats
Machine::runKernel(const KernelDesc &kernel)
{
    telemetry::Span span("launch", kernel.name);
    const LaunchStats stats = gpu_.launch(kernel);  // may throw

    const SimNs compute_ns =
        stats.work_ops / effectiveGpuRate(stats.threads);
    const SimNs hbm_ns = transferNs(stats.hbm_bytes, cfg_.hbm_gbps);
    const SimNs core_ns = std::max(compute_ns, hbm_ns);

    const SimNs pcie_ns =
        pcie_.bulkTime(stats.pm_line_bytes) +
        pcie_.bulkTime(stats.pm_read_bytes);
    // Under eADR the LLC is durable on arrival: the media absorbs
    // store bursts off the critical path and evicts well-batched full
    // lines in the background, so the random/unaligned-tier penalties
    // vanish from kernel latency (the big Fig 10 uplift for
    // fence-heavy workloads).
    // The WPQ absorbs the head of each kernel's write burst at full
    // speed (see SimConfig::wpq_absorb_bytes); charge it against the
    // slowest (random) tier first.
    NvmTierBytes charged = stats.nvm;
    charged.random -=
        std::min<std::uint64_t>(charged.random, cfg_.wpq_absorb_bytes);
    const SimNs nvm_write_ns = pool_.domain() == PersistDomain::LlcDurable
        ? transferNs(charged.total(), cfg_.nvm_seq_aligned_gbps)
        : media_->writeTime(charged, cfg_.nvm_gpu_random_boost);
    const SimNs nvm_ns = nvm_write_ns + media_->readTime(stats.pm_read_bytes);
    const SimNs mem_ns = std::max(pcie_ns, nvm_ns);

    const std::uint64_t issuing = std::min<std::uint64_t>(
        stats.threads,
        static_cast<std::uint64_t>(cfg_.max_resident_threads));
    const SimNs fence_ns = pcie_.persistOpsTime(stats.fences, issuing,
                                                fenceLatency());

    const SimNs launch_ns =
        kernel.no_launch_overhead ? 0.0 : cfg_.kernel_launch_ns;
    advance(launch_ns + std::max(core_ns, mem_ns) + fence_ns);

    pcie_write_bytes_ += stats.pm_line_bytes;
    if (fenceIsPersist(pool_.domain()))
        persist_payload_ += stats.pm_payload_bytes;
    if (telemetry::Session *s = telemetry::Session::current()) {
        span.arg("blocks", stats.blocks);
        span.arg("threads", stats.threads);
        span.arg("pm_payload_bytes", stats.pm_payload_bytes);
        span.arg("pm_line_txns", stats.pm_line_txns);
        span.arg("fences", stats.fences);
        span.arg("sim_ns", launch_ns + std::max(core_ns, mem_ns) +
                               fence_ns);
        recordLaunchMetrics(*s, stats, now_);
    }
    return stats;
}

void
Machine::cpuCompute(double ops, int threads)
{
    GPM_REQUIRE(threads >= 1, "cpuCompute needs >= 1 thread");
    const int t = std::min(threads, cfg_.cpu_max_threads);
    advance(ops / (cfg_.cpu_ops_per_ns * static_cast<double>(t)));
}

void
Machine::dmaDeviceToHost(std::uint64_t bytes)
{
    advance(pcie_.dmaTime(bytes));
    pcie_write_bytes_ += bytes;
}

void
Machine::dmaHostToDevice(std::uint64_t bytes)
{
    advance(pcie_.dmaTime(bytes));
}

void
Machine::cpuWritePersist(std::uint64_t pm_addr, const void *src,
                         std::uint64_t size, int threads)
{
    const OwnerId owner = next_cpu_owner_++;
    pool_.cpuWrite(owner, pm_addr, src, size);
    pool_.persistRange(pm_addr, size);

    // Each flushing thread sweeps a contiguous chunk in line-sized
    // transactions; the flush path, not the media, is usually the
    // bottleneck (Fig 3a), so charge the slower of the two.
    media_->closeRuns();
    const NvmTierBytes before = media_->bytes();
    media_->recordRun(pm_addr, size,
                   std::max<std::uint64_t>(1, size / cfg_.cache_line));
    // Under eADR no flushes are needed (CAP-eADR, section 6.1); the
    // store stream still drains through the media.
    const SimNs flush_ns = pool_.domain() == PersistDomain::LlcDurable
        ? cfg_.cpu_sfence_ns
        : cpu_persist_.persistTime(size, threads);
    const SimNs media_ns = media_->writeTime(media_->bytes() - before);
    advance(cpu_persist_.copyTime(size) + std::max(flush_ns, media_ns));
    persist_payload_ += size;
}

void
Machine::cpuPersistRange(std::uint64_t pm_addr, std::uint64_t size,
                         int threads)
{
    pool_.persistRange(pm_addr, size);
    media_->recordRun(pm_addr, size,
                   std::max<std::uint64_t>(1, size / cfg_.cache_line));
    advance(cpu_persist_.persistTime(size, threads));
    persist_payload_ += size;
}

void
Machine::cpuPersistScattered(std::uint64_t bytes, int threads)
{
    pool_.persistAll();
    if (bytes == 0)
        return;
    media_->recordScattered(bytes,
                         std::max<std::uint64_t>(1,
                                                 bytes / cfg_.cache_line));
    const SimNs flush_ns = pool_.domain() == PersistDomain::LlcDurable
        ? cfg_.cpu_sfence_ns
        : cpu_persist_.persistTime(bytes, threads);
    const SimNs media_ns = media_->writeTime(NvmTierBytes{0, 0, bytes});
    advance(std::max(flush_ns, media_ns));
    persist_payload_ += bytes;
}

void
Machine::cpuPmRead(std::uint64_t bytes, int threads)
{
    const int t = std::max(1, std::min(threads, cfg_.cpu_max_threads));
    media_->recordRead(bytes);
    // A few reader threads pipeline Optane's read latency away.
    advance(media_->readTime(bytes) / std::min(4, t) ); // bounded overlap
}

void
Machine::capMmPersist(std::uint64_t pm_addr, const void *src,
                      std::uint64_t size, int threads)
{
    dmaDeviceToHost(size);
    cpuWritePersist(pm_addr, src, size, threads);
}

void
Machine::capFsPersist(std::uint64_t pm_addr, const void *src,
                      std::uint64_t size, std::uint64_t write_calls)
{
    dmaDeviceToHost(size);
    const OwnerId owner = next_cpu_owner_++;
    pool_.cpuWrite(owner, pm_addr, src, size);
    pool_.persistRange(pm_addr, size);  // fsync makes it durable
    media_->recordRun(pm_addr, size,
                   std::max<std::uint64_t>(1, size / cfg_.fs_block_bytes));
    advance(fs_.writeFsyncTime(size, write_calls));
    persist_payload_ += size;
}

void
Machine::capPersistChunks(std::uint64_t region_base,
                          const void *host_base,
                          const std::vector<std::uint64_t> &chunk_idx,
                          std::uint64_t chunk_bytes, int threads,
                          bool via_fs)
{
    if (chunk_idx.empty())
        return;
    const std::uint64_t total = chunk_idx.size() * chunk_bytes;
    dmaDeviceToHost(total);

    const OwnerId owner = next_cpu_owner_++;
    media_->closeRuns();
    const NvmTierBytes before = media_->bytes();
    for (const std::uint64_t c : chunk_idx) {
        const std::uint64_t off = c * chunk_bytes;
        pool_.cpuWrite(owner, region_base + off,
                       static_cast<const std::uint8_t *>(host_base) +
                           off, chunk_bytes);
        pool_.persistRange(region_base + off, chunk_bytes);
        media_->recordRun(region_base + off, chunk_bytes,
                       std::max<std::uint64_t>(1,
                                               chunk_bytes /
                                                   cfg_.cache_line));
    }
    const SimNs media_ns = media_->writeTime(media_->bytes() - before);
    if (via_fs) {
        advance(fs_.writeFsyncTime(total, 1));
    } else {
        const SimNs flush_ns =
            pool_.domain() == PersistDomain::LlcDurable
                ? cfg_.cpu_sfence_ns
                : cpu_persist_.persistTime(total, threads);
        advance(cpu_persist_.copyTime(total) +
                std::max(flush_ns, media_ns));
    }
    persist_payload_ += total;
}

void
Machine::gpufsWrite(std::uint64_t pm_addr, const void *src,
                    std::uint64_t size, std::uint64_t calls)
{
    GPM_REQUIRE(kind_ == PlatformKind::Gpufs,
                "gpufsWrite outside the GPUfs platform");
    const OwnerId owner = next_cpu_owner_++;
    pool_.cpuWrite(owner, pm_addr, src, size);
    pool_.persistRange(pm_addr, size);  // the host OS persists
    media_->recordRun(pm_addr, size,
                   std::max<std::uint64_t>(1, size / cfg_.fs_block_bytes));
    pcie_write_bytes_ += size;
    advance(static_cast<double>(calls) * cfg_.gpufs_call_ns +
            pcie_.bulkTime(size) +
            fs_.writeFsyncTime(size, std::max<std::uint64_t>(1, calls)));
    persist_payload_ += size;
}

} // namespace gpm
