/**
 * @file
 * GPUfs comparator API (Silberstein et al., ASPLOS'13), as the paper
 * evaluates it in section 6.1.
 *
 * GPUfs exposes file calls (gread/gwrite) to GPU kernels, serviced by
 * an RPC to the host CPU, which performs the I/O and persists through
 * the OS. Two properties the paper leans on are made behavioural
 * here:
 *
 *  - calls are *per threadblock*: every thread of the block must
 *    reach the call site together (the library internally
 *    barrier-synchronizes). "Applications deadlock if individual
 *    threads try to read/write data" — close() audits participation
 *    and throws GpufsDeadlock when a block called with only a subset
 *    of its threads.
 *  - files are limited to 2 GB ("As GPUfs only supports file sizes
 *    upto 2GB, BLK and HS fail") — creation beyond the limit throws.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "gpusim/thread_ctx.hpp"
#include "platform/machine.hpp"

namespace gpm {

/** Thrown when per-thread misuse of the block-cooperative API is
 *  detected — the real library would hang the kernel. */
class GpufsDeadlock : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** A GPUfs-managed file, backed by a PM region through the host OS. */
class GpufsFile
{
  public:
    /**
     * Open (create) a GPUfs file of @p size bytes on the Gpufs
     * platform. Throws when the platform is wrong or the size
     * exceeds the 2 GB limit.
     */
    GpufsFile(Machine &m, const std::string &path, std::uint64_t size);

    /**
     * Block-cooperative gwrite: every thread of the calling block
     * must invoke it with identical arguments; the designated leader
     * performs the transfer. One host RPC is charged per block call.
     *
     * @param file_off  Destination offset within the file.
     * @param src       Source bytes (device-resident).
     * @param bytes     Write length.
     */
    void gwrite(ThreadCtx &ctx, std::uint64_t file_off,
                const void *src, std::uint64_t bytes);

    /** Block-cooperative gread of @p bytes at @p file_off. */
    void gread(ThreadCtx &ctx, std::uint64_t file_off, void *dst,
               std::uint64_t bytes);

    /**
     * Close the file: audits that every block that touched the file
     * did so with all of its threads — anything else would have
     * deadlocked on real GPUfs.
     */
    void close();

    std::uint64_t size() const { return region_.size; }
    const PmRegion &region() const { return region_; }

  private:
    struct BlockUse {
        std::uint64_t calls = 0;          ///< thread-call count
        std::uint32_t block_threads = 0;  ///< expected participants
    };

    void recordParticipant(ThreadCtx &ctx);

    Machine *m_;
    std::string path_;
    PmRegion region_;
    // Per (block, call-sequence-within-block) participation audit.
    std::map<std::uint32_t, BlockUse> use_;
    bool closed_ = false;
};

} // namespace gpm
