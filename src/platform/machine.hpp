/**
 * @file
 * The simulated heterogeneous machine: GPU + CPU + PM + interconnect,
 * configured as one of the paper's persistence platforms.
 *
 * Machine is the single owner of functional state (PmPool), the device
 * models (NvmModel, PcieLink, host models), the GPU executor, and the
 * simulated clock. Everything an experiment measures — operation time,
 * persisted payload (for Table 4's write amplification), PCIe write
 * traffic (Fig 12) — is accounted here.
 *
 * Timing composition for a kernel launch:
 *
 *     t = launch_overhead
 *       + max(compute, HBM traffic)            // core-side
 *         overlapped-with
 *         max(PCIe streaming, NVM media time)  // PM write path
 *       + fence serialization                  // wave-limited persists
 *
 * The fence term uses the PCIe non-posted concurrency bound and the
 * latency of wherever the system-scope fence completes (memory
 * controller under GPM, LLC under DDIO/eADR) — this is what separates
 * GPM, GPM-NDP and GPM-eADR in Figures 9 and 10.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/gpu_executor.hpp"
#include "memsim/host_models.hpp"
#include "memsim/media_backend.hpp"
#include "memsim/pcie_link.hpp"
#include "memsim/sim_config.hpp"
#include "platform/platform_kind.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {

/** A complete simulated system under one persistence platform. */
class Machine
{
  public:
    /**
     * @param cfg          Machine parameters (copied; owned here).
     * @param kind         Persistence platform to model.
     * @param pm_capacity  Size of the PM pool in bytes.
     * @param seed         Seed for crash-eviction randomness.
     */
    Machine(const SimConfig &cfg, PlatformKind kind,
            std::size_t pm_capacity, std::uint64_t seed = 1);

    /** Records whole-run observed totals (NVM tier bytes, PCIe
     *  traffic, final clock) into the telemetry session, if any. */
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    PlatformKind kind() const { return kind_; }
    const SimConfig &config() const { return cfg_; }
    PmPool &pool() { return pool_; }
    /** The media model cfg.media selected (docs/memsim.md). */
    MediaBackend &nvm() { return *media_; }
    GpuExecutor &gpu() { return gpu_; }
    const PcieLink &pcie() const { return pcie_; }

    // ---- simulated clock ---------------------------------------------------
    SimNs now() const { return now_; }
    void advance(SimNs ns) { now_ += ns; }

    // ---- figure counters ----------------------------------------------------

    /** Device-to-host PCIe write traffic so far (Fig 12 numerator). */
    std::uint64_t pcieWriteBytes() const { return pcie_write_bytes_; }

    /** Bytes persisted with intent so far (Table 4 WA accounting). */
    std::uint64_t persistPayloadBytes() const { return persist_payload_; }

    // ---- DDIO control (libGPM's gpm_persist_begin/end substrate) -----------

    /**
     * Disable DDIO for the GPU. Only meaningful on the plain GPM
     * platform; eADR platforms are always durable at the LLC and the
     * others deliberately leave DDIO on.
     */
    void ddioOff();

    /** Re-enable DDIO (gpm_persist_end). */
    void ddioOn();

    // ---- GPU execution -----------------------------------------------------

    /**
     * Execute @p kernel functionally and charge its simulated time.
     *
     * @throws KernelCrashed on an armed crash point; the clock is not
     *         advanced for a crashed launch (the measurement flows of
     *         Table 5 only time clean operation and clean recovery).
     */
    LaunchStats runKernel(const KernelDesc &kernel);

    // ---- host-side operations ------------------------------------------------

    /** CPU computation of @p ops abstract operations on @p threads. */
    void cpuCompute(double ops, int threads);

    /** DMA a device buffer to host DRAM (CAP step 1). */
    void dmaDeviceToHost(std::uint64_t bytes);

    /** DMA host data to the device. */
    void dmaHostToDevice(std::uint64_t bytes);

    /**
     * CAP-mm persist: DMA @p size bytes device-to-host, CPU-store them
     * into PM at @p pm_addr, then flush+drain with @p threads CPU
     * threads. Functionally durable on return.
     */
    void capMmPersist(std::uint64_t pm_addr, const void *src,
                      std::uint64_t size, int threads);

    /**
     * CAP-fs persist: DMA device-to-host, then write()+fsync() into a
     * DAX file backed at @p pm_addr using @p write_calls syscalls.
     */
    void capFsPersist(std::uint64_t pm_addr, const void *src,
                      std::uint64_t size, std::uint64_t write_calls);

    /**
     * CAP persist of a dirty-chunk set: the kernel reports which
     * fixed-size chunks of a device structure it touched, and only
     * those are DMA-ed out and persisted (one DMA + one fs write or
     * flush pass for the gathered set). This is the chunked-transfer
     * moderation of section 3.2 — and still the source of Table 4's
     * write amplification, since a chunk is dirtied by a single byte.
     *
     * @param region_base  PM address of the structure's start.
     * @param host_base    Device-volatile copy of the structure.
     * @param chunk_idx    Indices of dirty chunks.
     * @param chunk_bytes  Chunk granularity.
     * @param threads      CPU flush threads (ignored for via_fs).
     * @param via_fs       CAP-fs (write+fsync) vs CAP-mm (flush).
     */
    void capPersistChunks(std::uint64_t region_base,
                          const void *host_base,
                          const std::vector<std::uint64_t> &chunk_idx,
                          std::uint64_t chunk_bytes, int threads,
                          bool via_fs);

    /**
     * CPU store + flush of CPU-generated data (CPU-only baselines and
     * the CPU half of GPM-NDP). No DMA is charged.
     */
    void cpuWritePersist(std::uint64_t pm_addr, const void *src,
                         std::uint64_t size, int threads);

    /**
     * Flush an address range already stored to PM (GPM-NDP's
     * after-kernel durability pass; CLFLUSHOPT by address).
     */
    void cpuPersistRange(std::uint64_t pm_addr, std::uint64_t size,
                         int threads);

    /**
     * Flush *everything* currently pending to PM with @p threads CPU
     * threads sweeping scattered cache lines (the GPM-NDP durability
     * pass: the CPU does not know which lines the kernel updated
     * beyond a conservative line list of @p bytes total).
     */
    void cpuPersistScattered(std::uint64_t bytes, int threads);

    /** Read @p bytes from PM into the host (restores, CPU reads). */
    void cpuPmRead(std::uint64_t bytes, int threads);

    // ---- GPUfs comparator ----------------------------------------------------

    /** True when GPUfs can host a file of @p file_bytes (2 GB limit). */
    bool
    gpufsSupported(std::uint64_t file_bytes) const
    {
        return file_bytes <= cfg_.gpufs_max_file_bytes;
    }

    /**
     * gwrite() from GPU kernels: @p calls per-threadblock RPCs moving
     * @p size bytes total into the file at @p pm_addr, persisted by
     * the host OS.
     */
    void gpufsWrite(std::uint64_t pm_addr, const void *src,
                    std::uint64_t size, std::uint64_t calls);

  private:
    SimNs fenceLatency() const;
    double effectiveGpuRate(std::uint64_t threads) const;

    SimConfig cfg_;
    PlatformKind kind_;
    PmPool pool_;
    std::unique_ptr<MediaBackend> media_;
    GpuExecutor gpu_;
    PcieLink pcie_;
    CpuPersistModel cpu_persist_;
    FsModel fs_;

    SimNs now_ = 0;
    std::uint64_t pcie_write_bytes_ = 0;
    std::uint64_t persist_payload_ = 0;
    std::uint64_t next_cpu_owner_ = 0;
};

} // namespace gpm
