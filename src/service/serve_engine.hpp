/**
 * @file
 * Deterministic KVS serving engine over GpKvs (the "GPM-as-a-service"
 * tentpole): closed-loop load generation, bounded-depth admission,
 * dynamic batching, and key-sharded Machine+PmPool persist pipelines.
 *
 * The paper's amortization argument — massive parallelism hides
 * launch + persist latency — only shows up when many small requests
 * share one kernel launch. This engine measures exactly that, as a
 * *serving system*: N closed-loop clients issue get/put/delete
 * requests over a seeded zipfian or uniform key popularity; requests
 * are admitted into per-shard bounded queues (a full queue blocks the
 * client — backpressure); a dynamic batcher closes a batch when it
 * reaches `batch_max` ops or when the oldest admitted op has waited
 * `batch_deadline_ns`; each shard is an independent Machine+PmPool
 * running GpKvs::serveBatch transactions, so persist cost amortizes
 * across the batch exactly as in Figure 6(a).
 *
 * Time is *virtual*: the discrete-event loop orders client arrivals,
 * batch deadlines and batch completions on a single clock, and a
 * batch's service time is the simulated duration GpKvs::serveBatch
 * accrues on its shard's Machine (enqueue -> batch-close -> launch ->
 * persist -> ack). Per-op latency is request-to-ack in that clock,
 * accumulated into log2 histograms whose p50/p99/p999 accessors feed
 * BENCH_serve.json.
 *
 * Determinism contract (the repo-wide rule): all randomness flows
 * from ServeConfig::seed through sequential draws on the event loop;
 * host execution of closed batches is farmed to the sweep worker pool
 * (`jobs`) with canonical-order result slots, and the serve kernel is
 * block-independent (`exec_workers`). Same seed => bit-identical ack
 * stream and report signature at any jobs x exec-workers width.
 *
 * Crash injection: `crash_at_launch` dooms the Nth batch launch
 * (globally, in launch order) with an armed CrashPoint; the engine
 * then power-fails every shard pool, runs reboot recovery on each,
 * and verifies zero acknowledged-write loss against per-shard host
 * mirrors (the torture "serve" invariant sweeps this grid).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/keydist.hpp"
#include "gpusim/kernel.hpp"
#include "platform/machine.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/kvs.hpp"

namespace gpm {

/** Serving-engine knobs (defaults are a small smoke configuration). */
struct ServeConfig {
    PlatformKind platform = PlatformKind::Gpm;
    std::uint32_t shards = 2;        ///< independent Machine pipelines
    std::uint32_t n_sets = 1u << 13; ///< sets per shard
    std::uint32_t clients = 64;      ///< closed-loop clients
    std::uint64_t requests = 8192;   ///< total requests to issue
    std::uint32_t batch_max = 256;   ///< close a batch at this size
    SimNs batch_deadline_ns = 20000; ///< ... or this long after its
                                     ///< oldest op was admitted
    std::uint32_t queue_depth = 4096;  ///< per-shard admission bound
    SimNs think_ns = 2000;           ///< client think time after ack
    double get_ratio = 0.5;          ///< fraction of GETs
    double del_ratio = 0.05;         ///< fraction of DELs
    KeyDistKind dist = KeyDistKind::Zipfian;
    std::uint64_t key_space = 1u << 16;  ///< distinct popularity ranks
    double theta = KeyDist::kDefaultTheta;
    std::uint64_t seed = 42;
    int exec_workers = 1;            ///< per-shard parallel executor
    int jobs = 1;                    ///< sweep width for batch flushes
    /** Media backend behind every shard's Machine (timing-only: the
     *  ack stream and its pinned signature are media-invariant). */
    MediaConfig media{};
    /**
     * False models the GPM-NDP trap for the serving path: traffic
     * runs with DDIO on (fences order, nothing persists), so a crash
     * loses acknowledged writes — the torture grid classifies it as
     * the expected ddio-trap, never as silent success.
     */
    bool open_persist_window = true;
    // ---- variable-size values (GpmHeap-backed, docs/pmheap.md) -------
    /**
     * value_bytes_max > 0 switches every shard to the variable-size
     * serve path: PUT payloads are heap objects of a length drawn
     * uniformly from [value_bytes_min, value_bytes_max], GETs answer
     * with the stored payload's hash, and crash recovery reconciles
     * the per-shard GpmHeap. 0 keeps the legacy inline-8B path (and
     * its pinned ack signature) byte-identical.
     */
    std::uint32_t value_bytes_min = 0;
    std::uint32_t value_bytes_max = 0;
    /** Heap slots per size class in variable-size mode. */
    std::uint32_t heap_slots_per_class = 4096;
    // ---- crash injection ---------------------------------------------
    std::int64_t crash_at_launch = -1;  ///< global launch ordinal, -1 off
    CrashPoint crash_point;             ///< armed on the doomed launch
    double survive_prob = 0.0;          ///< line survival at the crash
};

/** Aggregate outcome of one serving run. */
struct ServeReport {
    std::uint64_t ops_issued = 0;    ///< requests admitted or blocked
    std::uint64_t ops_acked = 0;     ///< responses delivered
    std::uint64_t batches = 0;       ///< kernel launches
    std::uint64_t size_closes = 0;   ///< batches closed on batch_max
    std::uint64_t deadline_closes = 0;  ///< batches closed on deadline
    std::uint64_t deferred_conflicts = 0;  ///< same-set ops pushed to a
                                           ///< later batch
    std::uint64_t blocked_admissions = 0;  ///< client stalls on a full
                                           ///< admission queue
    std::uint64_t oracle_failures = 0;  ///< responses that contradicted
                                        ///< the host mirror (must be 0)
    SimNs makespan_ns = 0;           ///< virtual time of the last ack
    double throughput_mops = 0.0;    ///< acked ops per virtual second /1e6
    telemetry::HistogramData latency;     ///< request-to-ack ns
    telemetry::HistogramData batch_size;  ///< ops per launched batch
    std::uint64_t ack_signature = 0; ///< FNV fold of the ack stream
    // ---- crash-mode outcome ------------------------------------------
    bool crash_armed = false;
    bool crash_fired = false;
    bool recovery_ran = false;       ///< any shard ran undo recovery
    bool durable_ok = true;          ///< every shard's durable store ==
                                     ///< its oracle mirror after reboot
    std::uint64_t state_hash = 0;    ///< fold of per-shard durable hashes
    // Pool crash accounting, summed over shards (a power failure hits
    // every shard pool exactly once, so pool_crashes == shards on a
    // crash run). Feeds the torture "serve" invariant's bookkeeping.
    std::uint64_t pool_crashes = 0;      ///< crash() events, summed
    std::uint64_t crash_sub_extents = 0; ///< 128 B tearing rolls, summed
    std::uint64_t crash_survivors = 0;   ///< lines that survived, summed

    /** One order-stable FNV fingerprint of the whole report. */
    std::uint64_t signature() const;
};

/** The serving engine. Construct once, run once. */
class ServiceEngine
{
  public:
    explicit ServiceEngine(const ServeConfig &cfg);
    ~ServiceEngine();

    /** Run the configured traffic to completion (or to the injected
     *  crash + recovery) and return the report. */
    ServeReport run();

  private:
    struct AdmittedOp {
        std::uint64_t req_id = 0;
        std::uint32_t client = 0;
        std::uint32_t set = 0;      ///< set index on its shard
        KvRequest rq;
        SimNs t_request = 0;        ///< latency clock start
        SimNs t_admit = 0;          ///< entered the admission queue
    };

    struct Shard {
        std::unique_ptr<Machine> machine;
        std::unique_ptr<GpKvs> kvs;
        std::vector<KvPair> mirror;      ///< oracle state
        std::deque<AdmittedOp> pending;  ///< admission queue
        std::deque<AdmittedOp> blocked;  ///< clients stalled on depth
        bool busy = false;               ///< a batch is in flight
        std::uint64_t deadline_token = 0;  ///< arms/invalidates deadlines
        bool deadline_armed = false;     ///< a live deadline event exists
        // In-flight batch (content fixed at close, executed at flush).
        std::vector<AdmittedOp> batch_meta;
        std::vector<KvRequest> batch_reqs;
        std::vector<std::uint64_t> batch_results;
    };

    struct Event {
        SimNs t = 0;
        int kind = 0;       ///< 0 arrival, 1 deadline, 2 batch-done
        std::uint64_t seq = 0;  ///< push order: the deterministic tie-break
        std::uint32_t a = 0;    ///< client (arrival) or shard index
        std::uint64_t b = 0;    ///< deadline token
    };
    struct EventAfter {
        bool operator()(const Event &x, const Event &y) const;
    };

    void push(SimNs t, int kind, std::uint32_t a, std::uint64_t b = 0);
    std::uint32_t shardOf(std::uint64_t key) const;
    bool varMode() const { return cfg_.value_bytes_max > 0; }
    /** serveReference / serveReferenceVar, per the configured mode. */
    std::uint64_t applyReference(Shard &sh, const KvRequest &rq,
                                 std::uint32_t set) const;
    void issueRequest(std::uint32_t client, SimNs now);
    void admit(AdmittedOp op, SimNs now);
    void maybeLaunch(std::uint32_t s, SimNs now);
    void closeBatch(std::uint32_t s, SimNs now, bool by_size);
    void flushLaunches();
    void onBatchDone(std::uint32_t s, SimNs now);
    void crashAndRecover();

    ServeConfig cfg_;
    std::vector<Shard> shards_;
    std::vector<Event> heap_;        ///< std::push_heap on EventAfter
    std::uint64_t event_seq_ = 0;
    Rng verb_rng_;
    KeyDist dist_;
    ServeReport rep_;
    std::vector<std::uint32_t> launch_buf_;  ///< shards with closed,
                                             ///< unexecuted batches
    std::uint64_t launches_flushed_ = 0;     ///< global launch ordinal
    SimNs last_t_ = 0;
    bool crashed_ = false;
};

} // namespace gpm
