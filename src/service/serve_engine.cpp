#include "service/serve_engine.hpp"

#include <algorithm>
#include <cstring>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "gpm/gpm_runtime.hpp"
#include "harness/sweep.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

namespace {

/** Bit image of a SimNs (double) for order-stable FNV folding. */
std::uint64_t
bitsOf(SimNs v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

constexpr std::size_t kNoDoom = static_cast<std::size_t>(-1);

} // namespace

std::uint64_t
ServeReport::signature() const
{
    std::uint64_t h = kFnvOffset;
    h = fnv1aU64(ops_issued, h);
    h = fnv1aU64(ops_acked, h);
    h = fnv1aU64(batches, h);
    h = fnv1aU64(size_closes, h);
    h = fnv1aU64(deadline_closes, h);
    h = fnv1aU64(deferred_conflicts, h);
    h = fnv1aU64(blocked_admissions, h);
    h = fnv1aU64(oracle_failures, h);
    h = fnv1aU64(bitsOf(makespan_ns), h);
    h = fnv1aU64(ack_signature, h);
    h = fnv1aU64(latency.count, h);
    h = fnv1aU64(bitsOf(latency.sum), h);
    h = fnv1aU64(batch_size.count, h);
    h = fnv1aU64(bitsOf(batch_size.sum), h);
    h = fnv1aU64((std::uint64_t(crash_armed) << 3) |
                     (std::uint64_t(crash_fired) << 2) |
                     (std::uint64_t(recovery_ran) << 1) |
                     std::uint64_t(durable_ok),
                 h);
    h = fnv1aU64(state_hash, h);
    h = fnv1aU64(pool_crashes, h);
    h = fnv1aU64(crash_sub_extents, h);
    h = fnv1aU64(crash_survivors, h);
    return h;
}

bool
ServiceEngine::EventAfter::operator()(const Event &x,
                                      const Event &y) const
{
    if (x.t != y.t)
        return x.t > y.t;
    if (x.kind != y.kind)
        return x.kind > y.kind;
    return x.seq > y.seq;
}

ServiceEngine::ServiceEngine(const ServeConfig &cfg)
    : cfg_(cfg),
      verb_rng_(Rng(cfg.seed).split(0x7e)),
      dist_(cfg.dist, cfg.key_space, Rng(cfg.seed).split(0xd1).next(),
            cfg.theta)
{
    GPM_REQUIRE(cfg_.shards >= 1, "serving needs at least one shard");
    GPM_REQUIRE(cfg_.clients >= 1, "serving needs at least one client");
    GPM_REQUIRE(cfg_.batch_max >= 1, "empty batch_max");
    GPM_REQUIRE(cfg_.queue_depth >= 1, "empty queue_depth");
    GPM_REQUIRE(cfg_.get_ratio >= 0.0 && cfg_.del_ratio >= 0.0 &&
                    cfg_.get_ratio + cfg_.del_ratio <= 1.0,
                "verb mix must satisfy get + del <= 1");
    GPM_REQUIRE(inKernelPersistence(cfg_.platform),
                "the serving engine requires in-kernel persistence (",
                platformName(cfg_.platform), " given)");

    SimConfig sim;
    sim.exec_workers = cfg_.exec_workers;
    applyMediaConfig(sim, cfg_.media);

    GpKvsParams kp;
    kp.n_sets = cfg_.n_sets;
    kp.batch_ops = cfg_.batch_max;
    kp.batches = 1;
    kp.seed = cfg_.seed;
    kp.use_hcl = true;

    // Store + serve log (2 undo rows + tail per thread, striped) +
    // meta, with allocator slack.
    const std::uint64_t log_bytes =
        std::uint64_t(cfg_.batch_max) * GpKvsParams::kGroup * 64 +
        (1u << 20);
    std::uint64_t capacity = kp.storeBytes() + log_bytes;

    // Variable-size mode: power-of-two size classes covering the
    // configured payload range, one heap per shard.
    GpmHeapParams hp;
    if (varMode()) {
        GPM_REQUIRE(cfg_.value_bytes_min >= 1 &&
                        cfg_.value_bytes_min <= cfg_.value_bytes_max,
                    "value size range [", cfg_.value_bytes_min, ", ",
                    cfg_.value_bytes_max, "] is invalid");
        hp.class_sizes.clear();
        for (std::uint32_t cs = 16;; cs *= 2) {
            hp.class_sizes.push_back(cs);
            if (cs >= cfg_.value_bytes_max)
                break;
        }
        hp.slots_per_class = cfg_.heap_slots_per_class;
        hp.max_tx_ops = 2u * cfg_.batch_max;
        capacity += hp.poolBytes();
    }

    Rng seeder(cfg_.seed);
    shards_.resize(cfg_.shards);
    for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
        Shard &sh = shards_[s];
        sh.machine = std::make_unique<Machine>(
            sim, cfg_.platform, capacity, seeder.split(100 + s).next());
        sh.kvs = std::make_unique<GpKvs>(*sh.machine, kp);
        if (varMode())
            sh.kvs->serveSetupVar(cfg_.batch_max, hp);
        else
            sh.kvs->serveSetup(cfg_.batch_max);
        sh.mirror.assign(
            std::uint64_t(cfg_.n_sets) * GpKvsParams::kWays, KvPair{});
        // The service opens one long-lived persist window for all of
        // its traffic; leaving it closed under GPM is the NDP trap.
        if (cfg_.platform == PlatformKind::Gpm &&
            cfg_.open_persist_window)
            gpmPersistBegin(*sh.machine);
    }
}

ServiceEngine::~ServiceEngine() = default;

void
ServiceEngine::push(SimNs t, int kind, std::uint32_t a, std::uint64_t b)
{
    heap_.push_back(Event{t, kind, event_seq_++, a, b});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

std::uint64_t
ServiceEngine::applyReference(Shard &sh, const KvRequest &rq,
                              std::uint32_t set) const
{
    KvPair *base = &sh.mirror[std::uint64_t(set) * GpKvsParams::kWays];
    return varMode() ? GpKvs::serveReferenceVar(base, rq)
                     : GpKvs::serveReference(base, rq);
}

std::uint32_t
ServiceEngine::shardOf(std::uint64_t key) const
{
    // Upper hash bits, so the shard choice decorrelates from the
    // per-shard set index (which consumes the low bits).
    return static_cast<std::uint32_t>((GpKvs::hashKey(key) >> 32) %
                                      cfg_.shards);
}

void
ServiceEngine::issueRequest(std::uint32_t client, SimNs now)
{
    if (rep_.ops_issued >= cfg_.requests)
        return;  // the client retires

    AdmittedOp op;
    op.req_id = rep_.ops_issued++;
    op.client = client;
    op.rq.key = dist_.next();
    const double u = verb_rng_.uniform();
    if (u < cfg_.get_ratio) {
        op.rq.verb = KvVerb::Get;
    } else if (u < cfg_.get_ratio + cfg_.del_ratio) {
        op.rq.verb = KvVerb::Del;
    } else {
        op.rq.verb = KvVerb::Put;
        op.rq.value = verb_rng_.next() | 1;
        // Gated draw: the legacy (inline-value) request stream stays
        // byte-identical, preserving its pinned ack signature.
        if (varMode())
            op.rq.value_len =
                cfg_.value_bytes_min +
                static_cast<std::uint32_t>(verb_rng_.below(
                    cfg_.value_bytes_max - cfg_.value_bytes_min + 1));
    }
    op.t_request = now;

    const std::uint32_t s = shardOf(op.rq.key);
    op.set = shards_[s].kvs->setOf(op.rq.key);
    admit(std::move(op), now);
}

void
ServiceEngine::admit(AdmittedOp op, SimNs now)
{
    Shard &sh = shards_[shardOf(op.rq.key)];
    if (sh.pending.size() >= cfg_.queue_depth) {
        // Backpressure: the closed-loop client stalls here; its
        // latency clock (t_request) keeps running.
        ++rep_.blocked_admissions;
        sh.blocked.push_back(std::move(op));
        return;
    }
    op.t_admit = now;
    const std::uint32_t s = shardOf(op.rq.key);
    sh.pending.push_back(std::move(op));
    maybeLaunch(s, now);
}

void
ServiceEngine::maybeLaunch(std::uint32_t s, SimNs now)
{
    Shard &sh = shards_[s];
    if (sh.busy || sh.pending.empty())
        return;
    const bool full = sh.pending.size() >= cfg_.batch_max;
    if (full ||
        now >= sh.pending.front().t_admit + cfg_.batch_deadline_ns) {
        closeBatch(s, now, full);
        return;
    }
    if (!sh.deadline_armed) {
        sh.deadline_armed = true;
        push(sh.pending.front().t_admit + cfg_.batch_deadline_ns,
             /*kind=*/1, s, ++sh.deadline_token);
    }
}

void
ServiceEngine::closeBatch(std::uint32_t s, SimNs now, bool by_size)
{
    Shard &sh = shards_[s];
    ++sh.deadline_token;  // invalidate any armed deadline event
    sh.deadline_armed = false;
    sh.batch_meta.clear();
    sh.batch_reqs.clear();

    // FIFO collection with one-op-per-set dedup: a second op on a set
    // already in this batch defers to the next batch, which keeps the
    // kernel block-independent and the batch order-free (see
    // GpKvs::serveBatch). `taken` is a sorted set-index scratch.
    std::vector<std::uint32_t> taken;
    std::deque<AdmittedOp> keep;
    while (!sh.pending.empty()) {
        if (sh.batch_meta.size() >= cfg_.batch_max)
            break;
        AdmittedOp op = std::move(sh.pending.front());
        sh.pending.pop_front();
        const auto it =
            std::lower_bound(taken.begin(), taken.end(), op.set);
        if (it != taken.end() && *it == op.set) {
            ++rep_.deferred_conflicts;
            keep.push_back(std::move(op));
            continue;
        }
        taken.insert(it, op.set);
        sh.batch_reqs.push_back(op.rq);
        sh.batch_meta.push_back(std::move(op));
    }
    while (!sh.pending.empty()) {
        keep.push_back(std::move(sh.pending.front()));
        sh.pending.pop_front();
    }
    sh.pending = std::move(keep);

    GPM_ASSERT(!sh.batch_meta.empty(), "closed an empty batch");
    ++rep_.batches;
    if (by_size)
        ++rep_.size_closes;
    else
        ++rep_.deadline_closes;
    rep_.batch_size.observe(static_cast<double>(sh.batch_meta.size()));
    sh.busy = true;
    launch_buf_.push_back(s);

    // The launch freed admission-queue space: unblock stalled
    // clients, oldest first.
    while (!sh.blocked.empty() &&
           sh.pending.size() < cfg_.queue_depth) {
        AdmittedOp op = std::move(sh.blocked.front());
        sh.blocked.pop_front();
        op.t_admit = now;
        sh.pending.push_back(std::move(op));
    }
}

void
ServiceEngine::flushLaunches()
{
    // Global launch ordinals are assigned in close order; the crash
    // config dooms one of them.
    std::size_t doom = kNoDoom;
    if (cfg_.crash_at_launch >= 0 &&
        std::uint64_t(cfg_.crash_at_launch) >= launches_flushed_ &&
        std::uint64_t(cfg_.crash_at_launch) <
            launches_flushed_ + launch_buf_.size())
        doom = static_cast<std::size_t>(
            std::uint64_t(cfg_.crash_at_launch) - launches_flushed_);

    // Every buffered batch was closed at the same instant (last_t_),
    // each on a distinct idle shard with its content fixed — so host
    // execution is order-free and farms out to the sweep pool. The
    // canonical-order duration slots keep everything downstream
    // bit-identical at any jobs width.
    const std::size_t n_par =
        doom == kNoDoom ? launch_buf_.size() : doom;
    SweepOptions opt;
    opt.workers = static_cast<int>(
        std::min<std::size_t>(std::size_t(std::max(cfg_.jobs, 1)),
                              n_par ? n_par : 1));
    const std::vector<SimNs> durs = sweep(
        n_par,
        [&](SweepLane &lane, std::size_t i) -> SimNs {
            Shard &sh = shards_[launch_buf_[i]];
            const SimNs t0 = sh.machine->now();
            sh.kvs->serveBatch(sh.batch_reqs, sh.batch_results);
            lane.count("serve.batches_executed");
            return sh.machine->now() - t0;
        },
        opt);

    for (std::size_t i = 0; i < n_par; ++i) {
        const std::uint32_t s = launch_buf_[i];
        Shard &sh = shards_[s];
        // Oracle: every response must match the host mirror, applied
        // in launch order with the kernel's own placement policy.
        for (std::size_t j = 0; j < sh.batch_meta.size(); ++j) {
            const std::uint64_t expected = applyReference(
                sh, sh.batch_meta[j].rq, sh.batch_meta[j].set);
            if (expected != sh.batch_results[j])
                ++rep_.oracle_failures;
        }
        push(last_t_ + durs[i], /*kind=*/2, s);
        ++launches_flushed_;
    }

    if (doom != kNoDoom) {
        // The doomed launch runs on the caller with the crash point
        // armed (launchParallelArmed keeps it exec-width invariant);
        // later launches in the wave never started — their ops are
        // unacknowledged and may be lost.
        Shard &sh = shards_[launch_buf_[doom]];
        bool fired = false;
        try {
            sh.kvs->serveBatch(sh.batch_reqs, sh.batch_results,
                               &cfg_.crash_point);
        } catch (const KernelCrashed &) {
            fired = true;
        }
        ++launches_flushed_;
        rep_.crash_fired = fired;
        if (!fired) {
            // The armed ordinal was past the kernel's events: the
            // batch committed (still unacked — the power failure
            // beats the ack).
            for (std::size_t j = 0; j < sh.batch_meta.size(); ++j)
                applyReference(sh, sh.batch_meta[j].rq,
                               sh.batch_meta[j].set);
        }
        crashed_ = true;
        crashAndRecover();
    }
    launch_buf_.clear();
}

void
ServiceEngine::onBatchDone(std::uint32_t s, SimNs now)
{
    Shard &sh = shards_[s];
    sh.busy = false;
    for (std::size_t j = 0; j < sh.batch_meta.size(); ++j) {
        const AdmittedOp &op = sh.batch_meta[j];
        std::uint64_t h = rep_.ack_signature;
        h = fnv1aU64(op.req_id, h);
        h = fnv1aU64(static_cast<std::uint64_t>(op.rq.verb), h);
        h = fnv1aU64(op.rq.key, h);
        h = fnv1aU64(op.rq.value, h);
        if (varMode())
            h = fnv1aU64(op.rq.value_len, h);
        h = fnv1aU64(sh.batch_results[j], h);
        h = fnv1aU64(bitsOf(op.t_request), h);
        h = fnv1aU64(bitsOf(now), h);
        rep_.ack_signature = h;
        rep_.latency.observe(now - op.t_request);
        ++rep_.ops_acked;
        // Closed loop: the client thinks, then issues its next
        // request.
        push(now + cfg_.think_ns, /*kind=*/0, op.client);
    }
    rep_.makespan_ns = now;
    sh.batch_meta.clear();
    sh.batch_reqs.clear();
    sh.batch_results.clear();
    maybeLaunch(s, now);
}

void
ServiceEngine::crashAndRecover()
{
    telemetry::Span span("serve", "crash_recover");
    // Power failure hits every shard at once; each pool rolls its own
    // deterministic line-survival dice.
    for (Shard &sh : shards_)
        sh.machine->pool().crash(cfg_.survive_prob);
    // Reboot: every shard runs the Figure 6(b) undo recovery.
    for (Shard &sh : shards_)
        rep_.recovery_ran = sh.kvs->serveRecover() || rep_.recovery_ran;
    // Zero acknowledged-write loss: acked batches are a prefix of the
    // mirror, so durable == mirror implies every acked write (and
    // every committed-but-unacked one) survived, and the doomed
    // batch was rolled back whole.
    std::uint64_t h = kFnvOffset;
    for (Shard &sh : shards_) {
        rep_.durable_ok = (varMode()
                               ? sh.kvs->durableEqualsVar(sh.mirror)
                               : sh.kvs->durableEquals(sh.mirror)) &&
                          rep_.durable_ok;
        h = fnv1aU64(sh.kvs->durableStoreHash(), h);
        const PmPoolStats &ps = sh.machine->pool().stats();
        rep_.pool_crashes += ps.crashes;
        rep_.crash_sub_extents += ps.crash_sub_extents;
        rep_.crash_survivors += ps.crash_survivors;
    }
    rep_.state_hash = h;
}

ServeReport
ServiceEngine::run()
{
    telemetry::Span span("serve", "service_run");
    rep_.ack_signature = kFnvOffset;
    rep_.crash_armed = cfg_.crash_at_launch >= 0;

    for (std::uint32_t c = 0; c < cfg_.clients; ++c)
        push(0.0, /*kind=*/0, c);

    while (!crashed_ && (!heap_.empty() || !launch_buf_.empty())) {
        // Resolve closed batches before crossing a virtual-time
        // boundary: a batch closed at T completes strictly after T,
        // so only events at exactly T may run before its flush.
        if (!launch_buf_.empty() &&
            (heap_.empty() || heap_.front().t > last_t_)) {
            flushLaunches();
            continue;
        }
        std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
        const Event e = heap_.back();
        heap_.pop_back();
        last_t_ = e.t;
        switch (e.kind) {
          case 0:
            issueRequest(e.a, e.t);
            break;
          case 1: {
            Shard &sh = shards_[e.a];
            if (e.b != sh.deadline_token)
                break;  // superseded deadline
            sh.deadline_armed = false;
            if (!sh.busy && !sh.pending.empty())
                closeBatch(e.a, e.t, /*by_size=*/false);
            break;
          }
          case 2:
            onBatchDone(e.a, e.t);
            break;
        }
    }

    if (!crashed_ && cfg_.crash_at_launch >= 0) {
        // Armed past the final launch: the failure lands after
        // traffic drained; recovery must still be a no-op success.
        crashAndRecover();
    }

    if (rep_.makespan_ns > 0)
        rep_.throughput_mops = static_cast<double>(rep_.ops_acked) /
                               rep_.makespan_ns * 1e3;
    return rep_;
}

} // namespace gpm
