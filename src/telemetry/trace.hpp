/**
 * @file
 * Chrome trace-event timeline collection.
 *
 * Trace gathers *complete* ("ph":"X") and instant ("ph":"i") events
 * into per-thread buffers and serializes them as the Chrome
 * trace-event JSON object format ({"traceEvents": [...]}), loadable
 * directly in Perfetto (ui.perfetto.dev) and chrome://tracing.
 *
 * Event categories used across the sim stack (see docs/telemetry.md):
 *
 *   launch       kernel launches (Machine::runKernel)
 *   block        per-block execution and block-ordered replay
 *   flush        phase-boundary warp flushes through the coalescer
 *   line-commit  batches of 128 B line transactions into the NVM model
 *   log          HCL / conventional log appends (sampled)
 *   checkpoint   gpmcp checkpoint epochs
 *   recovery     restore / recover / replay-after-reboot paths
 *   crash        PmPool power-failure events
 *   scenario     one torture-matrix scenario or CLI phase
 *
 * Threading: the block scheduler's pool workers record concurrently,
 * so buffers are thread-local (created once per thread per Trace
 * under a mutex, then lock-free). Timestamps are host wall-clock
 * microseconds since the Trace was created — telemetry observes the
 * simulator, it never feeds back into modelled time.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gpm::telemetry {

class JsonWriter;

/** One trace event (complete span or instant). */
struct TraceEvent {
    double ts_us = 0.0;   ///< start, microseconds since trace epoch
    double dur_us = 0.0;  ///< span duration (0 for instants)
    std::uint32_t tid = 0;
    char ph = 'X';        ///< 'X' complete, 'i' instant
    const char *cat = ""; ///< static category string
    std::string name;
    std::string args;     ///< pre-rendered JSON object ("{...}"), or ""
};

/** Thread-safe trace-event collector. */
class Trace
{
  public:
    Trace();
    ~Trace();

    Trace(const Trace &) = delete;
    Trace &operator=(const Trace &) = delete;

    /** Microseconds since this trace's epoch. */
    double
    nowUs() const
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0_)
            .count();
    }

    /** Record one event; ev.tid is assigned from the calling thread. */
    void record(TraceEvent ev);

    /** Total events recorded so far. */
    std::size_t eventCount() const;

    /** Merge all buffers into one timestamp-sorted list. */
    std::vector<TraceEvent> collect() const;

    /** Emit {"traceEvents": [...], "displayTimeUnit": "ms"}. */
    void writeJson(JsonWriter &w) const;

  private:
    struct Buffer {
        std::thread::id owner;
        std::uint32_t tid = 0;
        std::vector<TraceEvent> events;
    };

    Buffer &buffer();

    std::chrono::steady_clock::time_point t0_;
    std::uint64_t gen_;  ///< distinguishes Trace instances for the TLS cache

    mutable std::mutex m_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
};

} // namespace gpm::telemetry
