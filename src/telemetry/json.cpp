#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/status.hpp"

namespace gpm::telemetry {

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(&os), pretty_(pretty)
{
}

JsonWriter::~JsonWriter() = default;

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double v)
{
    // JSON has no NaN/Inf literals; degrade rather than corrupt the
    // document.
    if (std::isnan(v))
        return "0";
    if (std::isinf(v))
        return v > 0 ? "1e308" : "-1e308";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    *os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        *os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    GPM_REQUIRE(!root_done_, "JsonWriter: value after document end");
    if (stack_.empty()) {
        return;  // the root value
    }
    Level &top = stack_.back();
    if (top.array) {
        GPM_REQUIRE(!key_pending_, "JsonWriter: key inside an array");
        if (!top.first)
            *os_ << ',';
        top.first = false;
        indent();
    } else {
        GPM_REQUIRE(key_pending_,
                    "JsonWriter: object member needs key() first");
        key_pending_ = false;
    }
}

void
JsonWriter::key(std::string_view k)
{
    GPM_REQUIRE(!stack_.empty() && !stack_.back().array,
                "JsonWriter: key() outside an object");
    GPM_REQUIRE(!key_pending_, "JsonWriter: two keys in a row");
    Level &top = stack_.back();
    if (!top.first)
        *os_ << ',';
    top.first = false;
    indent();
    *os_ << '"' << escape(k) << "\": ";
    key_pending_ = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    *os_ << '{';
    stack_.emplace_back(false, true);
}

void
JsonWriter::endObject()
{
    GPM_REQUIRE(!stack_.empty() && !stack_.back().array,
                "JsonWriter: endObject outside an object");
    GPM_REQUIRE(!key_pending_, "JsonWriter: dangling key at endObject");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    *os_ << '}';
    if (stack_.empty())
        root_done_ = true;
}

void
JsonWriter::beginArray()
{
    beforeValue();
    *os_ << '[';
    stack_.emplace_back(true, true);
}

void
JsonWriter::endArray()
{
    GPM_REQUIRE(!stack_.empty() && stack_.back().array,
                "JsonWriter: endArray outside an array");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    *os_ << ']';
    if (stack_.empty())
        root_done_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    beforeValue();
    *os_ << '"' << escape(s) << '"';
    if (stack_.empty())
        root_done_ = true;
}

void
JsonWriter::value(bool b)
{
    beforeValue();
    *os_ << (b ? "true" : "false");
    if (stack_.empty())
        root_done_ = true;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    *os_ << number(v);
    if (stack_.empty())
        root_done_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    *os_ << v;
    if (stack_.empty())
        root_done_ = true;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    *os_ << v;
    if (stack_.empty())
        root_done_ = true;
}

void
JsonWriter::rawValue(std::string_view raw)
{
    beforeValue();
    *os_ << raw;
    if (stack_.empty())
        root_done_ = true;
}

// ---- validation -----------------------------------------------------------

namespace {

/** Recursive-descent JSON syntax checker over a string_view. */
class Validator
{
  public:
    explicit Validator(std::string_view t) : t_(t) {}

    bool
    run(std::string *error)
    {
        ok_ = true;
        pos_ = 0;
        depth_ = 0;
        skipWs();
        parseValue();
        skipWs();
        if (ok_ && pos_ != t_.size())
            fail("trailing data");
        if (!ok_ && error)
            *error = err_;
        return ok_;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            err_ = why + " at byte " + std::to_string(pos_);
        }
    }

    bool
    eof() const
    {
        return pos_ >= t_.size();
    }

    char
    peek() const
    {
        return eof() ? '\0' : t_[pos_];
    }

    void
    skipWs()
    {
        while (!eof() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                          t_[pos_] == '\n' || t_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view lit)
    {
        if (t_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    void
    parseString()
    {
        if (peek() != '"')
            return fail("expected string");
        ++pos_;
        while (!eof() && t_[pos_] != '"') {
            if (t_[pos_] == '\\') {
                ++pos_;
                if (eof())
                    break;
                const char e = t_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= t_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                t_[pos_ + i])))
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape");
                }
            } else if (static_cast<unsigned char>(t_[pos_]) < 0x20) {
                return fail("control character in string");
            }
            ++pos_;
        }
        if (eof())
            return fail("unterminated string");
        ++pos_;  // closing quote
    }

    void
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        // Leading zeros: "0" ok, "01" not.
        if (t_[start] == '0' && pos_ - start > 1 && t_[start + 1] != '.' &&
            t_[start + 1] != 'e' && t_[start + 1] != 'E')
            return fail("leading zero");
        if (t_[start] == '-' && t_[start + 1] == '0' && pos_ - start > 2 &&
            t_[start + 2] != '.' && t_[start + 2] != 'e' &&
            t_[start + 2] != 'E')
            return fail("leading zero");
    }

    void
    parseValue()
    {
        if (!ok_)
            return;
        if (++depth_ > 256) {
            fail("nesting too deep");
            --depth_;
            return;
        }
        skipWs();
        const char c = peek();
        if (c == '{') {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
            } else {
                while (ok_) {
                    skipWs();
                    parseString();
                    skipWs();
                    if (peek() != ':') {
                        fail("expected ':'");
                        break;
                    }
                    ++pos_;
                    parseValue();
                    skipWs();
                    if (peek() == ',') {
                        ++pos_;
                        continue;
                    }
                    if (peek() == '}') {
                        ++pos_;
                        break;
                    }
                    fail("expected ',' or '}'");
                }
            }
        } else if (c == '[') {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
            } else {
                while (ok_) {
                    parseValue();
                    skipWs();
                    if (peek() == ',') {
                        ++pos_;
                        continue;
                    }
                    if (peek() == ']') {
                        ++pos_;
                        break;
                    }
                    fail("expected ',' or ']'");
                }
            }
        } else if (c == '"') {
            parseString();
        } else if (c == 't') {
            if (!literal("true"))
                fail("bad literal");
        } else if (c == 'f') {
            if (!literal("false"))
                fail("bad literal");
        } else if (c == 'n') {
            if (!literal("null"))
                fail("bad literal");
        } else {
            parseNumber();
        }
        --depth_;
    }

    std::string_view t_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    bool ok_ = true;
    std::string err_;
};

} // namespace

bool
validateJson(std::string_view text, std::string *error)
{
    return Validator(text).run(error);
}

bool
validateJsonFile(const std::string &path,
                 const std::vector<std::string> &required_keys,
                 std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (!validateJson(text, error))
        return false;
    for (const std::string &k : required_keys) {
        // Top-level membership check; keys are emitted by JsonWriter,
        // so the quoted-and-colon form is canonical.
        if (text.find("\"" + JsonWriter::escape(k) + "\":") ==
            std::string::npos) {
            if (error)
                *error = path + " lacks required key \"" + k + "\"";
            return false;
        }
    }
    return true;
}

} // namespace gpm::telemetry
