/**
 * @file
 * Thread-safe metrics registry for the simulator.
 *
 * Three metric kinds, matching how the sim stack actually produces
 * numbers:
 *
 *  - counters: monotonically increasing uint64 totals (bytes, txns,
 *    launches). Atomic adds; interning a name returns a stable
 *    CounterId so hot sites resolve the name once.
 *  - gauges: last-written double values plus a real-valued accumulate
 *    path (work_ops, the simulated clock).
 *  - histograms: log2-binned distributions with count/sum/min/max
 *    (span wall-times, per-launch sizes).
 *
 * Hot-path discipline: the instrumented inner loops (warp flushes,
 * block execution on pool workers) never touch the registry directly —
 * they add into a per-worker HotShard (a plain array, lock-free by
 * construction) that the executor merges at launch boundaries, the
 * same place LaunchStats already aggregates. Everything else (launch
 * boundaries, crash events, checkpoint epochs) is cold enough for the
 * registry's mutex.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace gpm::telemetry {

class JsonWriter;

/** Log2-binned distribution with count/sum/min/max. */
struct HistogramData {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** bins[0] covers v < 1; bins[b] covers [2^(b-1), 2^b). */
    std::array<std::uint64_t, 64> bins{};

    void observe(double v);

    /** Bin index of @p v (see bins). */
    static unsigned binOf(double v);

    double
    mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Estimate the @p q quantile (q in [0, 1]) from the log2 bins.
     *
     * The rank-selected bin is linearly interpolated across its span
     * [2^(b-1), 2^b) by the rank's position among the bin's samples,
     * then clamped to the observed [min, max] so single-bin and
     * tail-bin estimates never leave the data range. Exact for
     * distributions with one sample per bin; within a factor of 2
     * (one bin width) otherwise — the usual log2-histogram contract.
     * Returns 0 for an empty histogram.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }

    bool operator==(const HistogramData &o) const = default;
};

/** A point-in-time copy of a Registry's contents. */
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;

    /** Counter value, 0 when absent. */
    std::uint64_t counter(std::string_view name) const;

    /** Gauge value, 0.0 when absent. */
    double gauge(std::string_view name) const;

    /**
     * Emit the snapshot as one JSON object value:
     * {"counters": {...}, "gauges": {...}, "histograms": {...}}.
     */
    void writeJson(JsonWriter &w) const;

    /**
     * Emit only the three members (no surrounding object), so tools
     * can splice envelope fields ("schema", "tool", ...) into the
     * same top-level object. @p w must be inside an open object.
     */
    void writeFields(JsonWriter &w) const;
};

/** Thread-safe named-metric store. */
class Registry
{
  public:
    using CounterId = std::uint32_t;

    /** Hard cap on distinct counters; the id -> slot array is fixed so
     *  add() by id is lock-free against concurrent interning. */
    static constexpr std::size_t kMaxCounters = 1024;

    /** Intern @p name, returning its stable id (idempotent). */
    CounterId counterId(std::string_view name);

    /** Add @p n to the counter @p id (lock-free). */
    void
    add(CounterId id, std::uint64_t n)
    {
        slots_[id].fetch_add(n, std::memory_order_relaxed);
    }

    /** Add @p n to the counter named @p name (interns on first use). */
    void
    add(std::string_view name, std::uint64_t n = 1)
    {
        add(counterId(name), n);
    }

    /** Current value of counter @p name (0 when never interned). */
    std::uint64_t counter(std::string_view name) const;

    /** Set gauge @p name to @p v. */
    void gaugeSet(std::string_view name, double v);

    /** Accumulate @p v into gauge @p name (real-valued counter). */
    void gaugeAdd(std::string_view name, double v);

    /** Record @p v into histogram @p name. */
    void observe(std::string_view name, double v);

    /** Copy out everything recorded so far. */
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex m_;
    std::map<std::string, CounterId, std::less<>> ids_;
    std::array<std::atomic<std::uint64_t>, kMaxCounters> slots_{};
    std::map<std::string, double, std::less<>> gauges_;
    std::map<std::string, HistogramData, std::less<>> hists_;
};

/**
 * The fixed set of hot-path counters the executor shards per worker.
 * An enum rather than interned names so a shard is a plain array add
 * with no lookup at all on the block-execution path.
 */
enum class HotCounter : unsigned {
    BlocksExecuted,    ///< blocks run (direct or buffered)
    BlocksReplayed,    ///< shadow logs replayed in block order
    WarpFlushes,       ///< phase-boundary warp flushes with accesses
    FlushedAccesses,   ///< raw PM stores retired through coalescing
    CoalescedLineTxns, ///< 128 B line transactions produced
    kCount,
};

/** Registry name of @p c (the "exec." counter family). */
const char *hotCounterName(HotCounter c);

/**
 * Per-worker shard of the hot counters: a plain uint64 array owned by
 * one ExecLane, merged into the registry at launch boundaries. Adds
 * are completely lock-free (not even an atomic — the lane is owned by
 * exactly one worker during a launch).
 */
class HotShard
{
  public:
    /** A point-in-time copy of every hot counter. */
    using Counts =
        std::array<std::uint64_t, static_cast<unsigned>(HotCounter::kCount)>;

    void
    add(HotCounter c, std::uint64_t n)
    {
#ifndef GPM_TELEMETRY_DISABLED
        v_[static_cast<unsigned>(c)] += n;
#else
        (void)c;
        (void)n;
#endif
    }

    /** Fold this shard into @p r and zero it. */
    void mergeInto(Registry &r);

    /** Discard pending values (launch ended with no session installed). */
    void clear() { v_.fill(0); }

    std::uint64_t
    value(HotCounter c) const
    {
        return v_[static_cast<unsigned>(c)];
    }

    /** Snapshot the counters (pairs with diff() for per-block deltas). */
    Counts values() const { return v_; }

    /** Fold a delta produced by diff() back into this shard. */
    void
    addValues(const Counts &c)
    {
        for (std::size_t i = 0; i < c.size(); ++i)
            v_[i] += c[i];
    }

    /**
     * Element-wise @p after - @p before. The crash-armed parallel
     * executor snapshots a lane around each shadow block so blocks
     * discarded past the crash point can be subtracted back out.
     */
    static Counts
    diff(const Counts &after, const Counts &before)
    {
        Counts d{};
        for (std::size_t i = 0; i < d.size(); ++i)
            d[i] = after[i] - before[i];
        return d;
    }

  private:
    Counts v_{};
};

} // namespace gpm::telemetry
