/**
 * @file
 * The telemetry session: one metrics registry plus one trace timeline,
 * installed process-globally so instrumentation sites anywhere in the
 * sim stack can reach it with a single relaxed atomic load.
 *
 * Disabled-by-default discipline: no session is installed unless a
 * tool or test explicitly creates one (gpmtrace, test_telemetry), so
 * every instrumentation site costs exactly one null-check on the hot
 * path — the overhead asserted < 2% by bench/telemetry_overhead.
 * Defining GPM_TELEMETRY_DISABLED at compile time turns current()
 * into a constant nullptr and the compiler removes the sites outright.
 *
 * Telemetry is an observer: it never feeds back into modelled time,
 * RNG draws, or functional state, so an instrumented run's simulated
 * results are bit-identical with and without a session installed (the
 * parallel-equality test in test_telemetry leans on this).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace gpm::telemetry {

/** A live telemetry collection: metrics + trace. */
class Session
{
  public:
    Registry metrics;
    Trace trace;

    /** The installed session, or nullptr when telemetry is off. */
    static Session *
    current()
    {
#ifdef GPM_TELEMETRY_DISABLED
        return nullptr;
#else
        return g_current.load(std::memory_order_acquire);
#endif
    }

    /** Install @p s process-globally (nullptr uninstalls). */
    static void
    install(Session *s)
    {
        g_current.store(s, std::memory_order_release);
    }

  private:
    static inline std::atomic<Session *> g_current{nullptr};
};

/** RAII session for tools and tests: installs on construction,
 *  uninstalls on destruction. */
class ScopedSession
{
  public:
    ScopedSession() { Session::install(&s_); }
    ~ScopedSession() { Session::install(nullptr); }

    ScopedSession(const ScopedSession &) = delete;
    ScopedSession &operator=(const ScopedSession &) = delete;

    Session &operator*() { return s_; }
    Session *operator->() { return &s_; }

  private:
    Session s_;
};

/** True when a session is installed. */
inline bool
enabled()
{
    return Session::current() != nullptr;
}

/** Bump counter @p name by @p n when a session is installed. */
inline void
count(std::string_view name, std::uint64_t n = 1)
{
    if (Session *s = Session::current())
        s->metrics.add(name, n);
}

/** Set gauge @p name when a session is installed. */
inline void
gaugeSet(std::string_view name, double v)
{
    if (Session *s = Session::current())
        s->metrics.gaugeSet(name, v);
}

/** Accumulate into gauge @p name when a session is installed. */
inline void
gaugeAdd(std::string_view name, double v)
{
    if (Session *s = Session::current())
        s->metrics.gaugeAdd(name, v);
}

/** Record into histogram @p name when a session is installed. */
inline void
observe(std::string_view name, double v)
{
    if (Session *s = Session::current())
        s->metrics.observe(name, v);
}

/**
 * RAII trace span: records a complete event over its lifetime and
 * observes its wall-time into the "<cat>.wall_us" histogram.
 *
 * The session is captured at construction; a null category (or no
 * installed session) makes the span inert — name/args are then never
 * copied or rendered, so a disarmed span costs one atomic load.
 *
 * Spans survive exception unwinding (the destructor emits), which is
 * how crash-armed kernel launches still appear on the timeline.
 */
class Span
{
  public:
    Span(const char *cat, std::string_view name)
    {
        if (cat == nullptr)
            return;
        if (Session *s = Session::current()) {
            s_ = s;
            cat_ = cat;
            name_ = name;
            t0_us_ = s->trace.nowUs();
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (!s_)
            return;
        TraceEvent ev;
        ev.ts_us = t0_us_;
        ev.dur_us = s_->trace.nowUs() - t0_us_;
        ev.ph = 'X';
        ev.cat = cat_;
        ev.name = std::move(name_);
        if (!args_.empty()) {
            args_ += '}';
            ev.args = std::move(args_);
        }
        s_->trace.record(std::move(ev));
        s_->metrics.observe(std::string(cat_) + ".wall_us", ev.dur_us);
    }

    /** True when this span will emit (session active at construction). */
    bool armed() const { return s_ != nullptr; }

    void
    arg(std::string_view key, std::uint64_t v)
    {
        if (s_)
            rawArg(key, std::to_string(v));
    }

    void
    arg(std::string_view key, double v);

    void
    arg(std::string_view key, std::string_view v);

  private:
    void rawArg(std::string_view key, std::string_view rendered);

    Session *s_ = nullptr;
    const char *cat_ = "";
    double t0_us_ = 0.0;
    std::string name_;
    std::string args_;  ///< accumulating "{"k": v, ..." (no closing brace)
};

/** Emit an instant event (a point marker on the timeline). */
inline void
instant(const char *cat, std::string_view name, std::string args = {})
{
    if (Session *s = Session::current()) {
        TraceEvent ev;
        ev.ts_us = s->trace.nowUs();
        ev.ph = 'i';
        ev.cat = cat;
        ev.name = std::string(name);
        ev.args = std::move(args);
        s->trace.record(std::move(ev));
    }
}

} // namespace gpm::telemetry
