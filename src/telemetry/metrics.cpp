#include "telemetry/metrics.hpp"

#include <cmath>

#include "common/status.hpp"
#include "telemetry/json.hpp"

namespace gpm::telemetry {

unsigned
HistogramData::binOf(double v)
{
    if (!(v >= 1.0))  // negatives, NaN and sub-unity all land in bin 0
        return 0;
    int exp = 0;
    std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
    // v in [2^(exp-1), 2^exp)  ->  bin exp, clamped to the array.
    if (exp < 1)
        return 0;
    if (exp > 63)
        return 63;
    return static_cast<unsigned>(exp);
}

void
HistogramData::observe(double v)
{
    if (count == 0) {
        min = max = v;
    } else {
        if (v < min)
            min = v;
        if (v > max)
            max = v;
    }
    ++count;
    sum += v;
    ++bins[binOf(v)];
}

double
HistogramData::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    // NaN fails both ordered comparisons, so clamp via the negated
    // form — otherwise it flows into the rank cast as garbage.
    if (!(q >= 0.0))
        q = 0.0;
    else if (q > 1.0)
        q = 1.0;
    // Rank of the selected sample, 1-based: ceil(q * count), at least 1.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < bins.size(); ++b) {
        if (bins[b] == 0)
            continue;
        if (seen + bins[b] < rank) {
            seen += bins[b];
            continue;
        }
        // Rank lands in bin b: interpolate across the bin's value span
        // by the rank's position among this bin's samples.
        const double lo = b == 0 ? 0.0 : std::ldexp(1.0, int(b) - 1);
        const double hi = b == 0 ? 1.0 : std::ldexp(1.0, int(b));
        const double frac =
            static_cast<double>(rank - seen) / static_cast<double>(bins[b]);
        double v = lo + (hi - lo) * frac;
        if (v < min)
            v = min;
        if (v > max)
            v = max;
        return v;
    }
    return max;  // unreachable when bins/count are consistent
}

std::uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    const auto it = counters.find(std::string(name));
    return it == counters.end() ? 0 : it->second;
}

double
MetricsSnapshot::gauge(std::string_view name) const
{
    const auto it = gauges.find(std::string(name));
    return it == gauges.end() ? 0.0 : it->second;
}

void
MetricsSnapshot::writeJson(JsonWriter &w) const
{
    w.beginObject();
    writeFields(w);
    w.endObject();
}

void
MetricsSnapshot::writeFields(JsonWriter &w) const
{
    w.key("counters");
    w.beginObject();
    for (const auto &[name, v] : counters)
        w.field(name, v);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, v] : gauges)
        w.field(name, v);
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : histograms) {
        w.key(name);
        w.beginObject();
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("min", h.min);
        w.field("max", h.max);
        w.field("mean", h.mean());
        w.field("p50", h.p50());
        w.field("p99", h.p99());
        w.field("p999", h.p999());
        // Only the populated prefix of the log2 bins; trailing zeros
        // carry no information and bloat every metrics.json.
        unsigned last = 0;
        for (unsigned b = 0; b < h.bins.size(); ++b)
            if (h.bins[b])
                last = b;
        w.key("log2_bins");
        w.beginArray();
        for (unsigned b = 0; b <= last && h.count; ++b)
            w.value(h.bins[b]);
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

Registry::CounterId
Registry::counterId(std::string_view name)
{
    std::lock_guard<std::mutex> lock(m_);
    const auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    GPM_REQUIRE(ids_.size() < kMaxCounters,
                "telemetry registry counter limit (", kMaxCounters,
                ") exceeded interning '", std::string(name), "'");
    const CounterId id = static_cast<CounterId>(ids_.size());
    ids_.emplace(std::string(name), id);
    return id;
}

std::uint64_t
Registry::counter(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(m_);
    const auto it = ids_.find(name);
    if (it == ids_.end())
        return 0;
    return slots_[it->second].load(std::memory_order_relaxed);
}

void
Registry::gaugeSet(std::string_view name, double v)
{
    std::lock_guard<std::mutex> lock(m_);
    gauges_[std::string(name)] = v;
}

void
Registry::gaugeAdd(std::string_view name, double v)
{
    std::lock_guard<std::mutex> lock(m_);
    gauges_[std::string(name)] += v;
}

void
Registry::observe(std::string_view name, double v)
{
    std::lock_guard<std::mutex> lock(m_);
    hists_[std::string(name)].observe(v);
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot s;
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &[name, id] : ids_)
        s.counters[name] = slots_[id].load(std::memory_order_relaxed);
    s.gauges.insert(gauges_.begin(), gauges_.end());
    s.histograms.insert(hists_.begin(), hists_.end());
    return s;
}

const char *
hotCounterName(HotCounter c)
{
    switch (c) {
      case HotCounter::BlocksExecuted: return "exec.blocks_executed";
      case HotCounter::BlocksReplayed: return "exec.blocks_replayed";
      case HotCounter::WarpFlushes: return "exec.warp_flushes";
      case HotCounter::FlushedAccesses: return "exec.flushed_accesses";
      case HotCounter::CoalescedLineTxns:
        return "exec.coalesced_line_txns";
      case HotCounter::kCount: break;
    }
    return "?";
}

void
HotShard::mergeInto(Registry &r)
{
    for (unsigned i = 0; i < v_.size(); ++i) {
        if (v_[i]) {
            r.add(hotCounterName(static_cast<HotCounter>(i)), v_[i]);
            v_[i] = 0;
        }
    }
}

} // namespace gpm::telemetry
