/**
 * @file
 * Minimal JSON emission and validation for the telemetry subsystem.
 *
 * Every machine-readable artifact the repo produces — trace.json,
 * metrics.json, the BENCH_*.json bench outputs — goes through
 * JsonWriter so they share one escaping/number-formatting policy and
 * are syntactically valid by construction. validateJson() is the
 * matching checker: a strict recursive-descent parser used by the CI
 * smoke job and by gpmtrace's post-write self-check, so a malformed
 * artifact fails the run that produced it rather than the tool that
 * later tries to load it.
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gpm::telemetry {

/**
 * Streaming JSON writer with structural checking.
 *
 * Usage follows the document structure: beginObject()/endObject(),
 * beginArray()/endArray(), key() before each object member, value()
 * for scalars. Misnesting (a value where a key is due, an endArray
 * closing an object, ...) is a panic — emitting malformed JSON is a
 * bug in the caller, never a runtime condition.
 */
class JsonWriter
{
  public:
    /** @param pretty  Two-space indentation (default); false packs. */
    explicit JsonWriter(std::ostream &os, bool pretty = true);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Member name; must precede every value inside an object. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(bool b);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Emit @p raw verbatim as one value (caller guarantees validity). */
    void rawValue(std::string_view raw);

    /** True once the root value is complete and the nesting is empty. */
    bool complete() const { return root_done_ && stack_.empty(); }

    /** JSON string-escape @p s (no surrounding quotes). */
    static std::string escape(std::string_view s);

    /** Format @p v as a JSON number (NaN/Inf degrade to 0/±1e308). */
    static std::string number(double v);

  private:
    struct Level {
        bool array = false;
        bool first = true;
    };

    void beforeValue();
    void indent();

    std::ostream *os_;
    bool pretty_;
    bool key_pending_ = false;
    bool root_done_ = false;
    std::vector<Level> stack_;
};

/**
 * Strict syntax validation of a complete JSON document.
 *
 * @param text   The document.
 * @param error  When non-null, receives a byte-offset diagnostic on
 *               failure.
 * @return true when @p text is exactly one valid JSON value.
 */
bool validateJson(std::string_view text, std::string *error = nullptr);

/**
 * Validate the file at @p path as JSON and require every name in
 * @p required_keys to appear as a top-level object member. Used by the
 * CI schema check for trace.json ("traceEvents") and metrics.json
 * ("schema", "counters", ...).
 */
bool validateJsonFile(const std::string &path,
                      const std::vector<std::string> &required_keys,
                      std::string *error = nullptr);

} // namespace gpm::telemetry
