#include "telemetry/telemetry.hpp"

#include "telemetry/json.hpp"

namespace gpm::telemetry {

void
Span::rawArg(std::string_view key, std::string_view rendered)
{
    args_ += args_.empty() ? "{\"" : ", \"";
    args_ += JsonWriter::escape(key);
    args_ += "\": ";
    args_ += rendered;
}

void
Span::arg(std::string_view key, double v)
{
    if (s_)
        rawArg(key, JsonWriter::number(v));
}

void
Span::arg(std::string_view key, std::string_view v)
{
    if (s_)
        rawArg(key, "\"" + JsonWriter::escape(v) + "\"");
}

} // namespace gpm::telemetry
