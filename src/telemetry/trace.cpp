#include "telemetry/trace.hpp"

#include <algorithm>
#include <atomic>

#include "telemetry/json.hpp"

namespace gpm::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_trace_gen{1};

/** Per-thread cache of the buffer for the most recent Trace used. */
struct TlsCache {
    std::uint64_t gen = 0;
    void *buf = nullptr;
};

thread_local TlsCache t_cache;

} // namespace

Trace::Trace()
    : t0_(std::chrono::steady_clock::now()),
      gen_(g_next_trace_gen.fetch_add(1, std::memory_order_relaxed))
{
}

Trace::~Trace() = default;

Trace::Buffer &
Trace::buffer()
{
    if (t_cache.gen == gen_)
        return *static_cast<Buffer *>(t_cache.buf);

    std::lock_guard<std::mutex> lock(m_);
    const std::thread::id self = std::this_thread::get_id();
    for (const std::unique_ptr<Buffer> &b : buffers_) {
        if (b->owner == self) {
            t_cache = {gen_, b.get()};
            return *b;
        }
    }
    auto fresh = std::make_unique<Buffer>();
    fresh->owner = self;
    fresh->tid = static_cast<std::uint32_t>(buffers_.size());
    Buffer &ref = *fresh;
    buffers_.push_back(std::move(fresh));
    t_cache = {gen_, &ref};
    return ref;
}

void
Trace::record(TraceEvent ev)
{
    Buffer &b = buffer();
    ev.tid = b.tid;
    b.events.push_back(std::move(ev));
}

std::size_t
Trace::eventCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::size_t n = 0;
    for (const std::unique_ptr<Buffer> &b : buffers_)
        n += b->events.size();
    return n;
}

std::vector<TraceEvent>
Trace::collect() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(m_);
        std::size_t n = 0;
        for (const std::unique_ptr<Buffer> &b : buffers_)
            n += b->events.size();
        out.reserve(n);
        for (const std::unique_ptr<Buffer> &b : buffers_)
            out.insert(out.end(), b->events.begin(), b->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_us < b.ts_us;
                     });
    return out;
}

void
Trace::writeJson(JsonWriter &w) const
{
    const std::vector<TraceEvent> events = collect();
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const TraceEvent &ev : events) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", std::string_view(ev.cat));
        w.key("ph");
        w.value(std::string_view(&ev.ph, 1));
        w.field("ts", ev.ts_us);
        if (ev.ph == 'X')
            w.field("dur", ev.dur_us);
        w.field("pid", std::uint64_t(1));
        w.field("tid", std::uint64_t(ev.tid));
        if (!ev.args.empty()) {
            w.key("args");
            w.rawValue(ev.args);
        }
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", std::string_view("ms"));
    w.endObject();
}

} // namespace gpm::telemetry
