#include "cpubaseline/cpu_kvs.hpp"

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"

namespace gpm {

namespace {

/** WAL record: key, value, and a committed marker word. */
struct WalRecord {
    std::uint64_t key;
    std::uint64_t value;
};

} // namespace

CpuPmKvs::CpuPmKvs(Machine &m, CpuKvsDesign design, const CpuKvsParams &p)
    : m_(&m), design_(design), p_(p)
{
    GPM_REQUIRE(m.kind() == PlatformKind::CpuOnly,
                "CPU KVS runs on the CpuOnly platform");
}

void
CpuPmKvs::setup()
{
    const std::uint64_t store_bytes =
        std::uint64_t(p_.n_sets) * GpKvsParams::kWays * sizeof(KvPair) +
        std::uint64_t(p_.batch_ops) * p_.batches * sizeof(KvPair);
    store_ = m_->pool().map("cpukvs.store", store_bytes, true);
    if (design_ != CpuKvsDesign::HashDirect) {
        wal_ = m_->pool().map(
            "cpukvs.wal",
            std::uint64_t(p_.batch_ops) * p_.batches *
                sizeof(WalRecord) + 64, true);
    }
}

void
CpuPmKvs::setHash(std::uint64_t key, std::uint64_t value)
{
    // Probe the 8-way set in place on PM, then write + flush + fence.
    const std::uint32_t set =
        static_cast<std::uint32_t>(GpKvs::hashKey(key) % p_.n_sets);
    std::uint32_t way = GpKvsParams::kWays;
    KvPair pair;
    for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
        m_->pool().read(store_.offset +
                            (std::uint64_t(set) * GpKvsParams::kWays +
                             w) * sizeof(KvPair),
                        &pair, sizeof(pair));
        if (pair.key == key || pair.key == 0) {
            way = w;
            break;
        }
    }
    if (way == GpKvsParams::kWays)
        return;  // set full: the SET fails, as in gpKVS

    const KvPair nv{key, value};
    const std::uint64_t addr =
        store_.offset +
        (std::uint64_t(set) * GpKvsParams::kWays + way) * sizeof(KvPair);
    m_->pool().cpuWrite(0, addr, &nv, sizeof(nv));
    m_->pool().persistRange(addr, sizeof(nv));
    // Scattered 256 B internal line write at the media.
    m_->nvm().recordScattered(m_->config().xpline_bytes, 1);
}

void
CpuPmKvs::spillMemtable()
{
    // Sorted run to PM; LsmWal rewrites more data per spill
    // (compaction into the lower level) than the matrix container.
    std::vector<KvPair> run;
    run.reserve(memtable_.size());
    for (const auto &[k, v] : memtable_) {
        run.emplace_back(k, v);
        spilled_[k] = v;
    }
    const double amplification =
        design_ == CpuKvsDesign::LsmWal ? 3.0 : 1.3;
    const std::uint64_t bytes = run.size() * sizeof(KvPair);
    m_->cpuWritePersist(store_.offset + run_tail_, run.data(), bytes,
                        p_.threads);
    // Compaction rewrites charged as extra sequential media traffic.
    m_->advance(transferNs(
        static_cast<std::uint64_t>(bytes * (amplification - 1.0)),
        m_->config().nvm_seq_unaligned_gbps));
    run_tail_ += bytes;
    memtable_.clear();

    // Truncate the WAL (one persisted tail store).
    wal_tail_ = 0;
    const std::uint64_t zero = 0;
    m_->cpuWritePersist(wal_.offset, &zero, 8, 1);
}

void
CpuPmKvs::setLsm(std::uint64_t key, std::uint64_t value)
{
    // WAL append: sequential, unaligned PM writes.
    const WalRecord rec{key, value};
    const std::uint64_t addr = wal_.offset + 64 + wal_tail_;
    m_->pool().cpuWrite(0, addr, &rec, sizeof(rec));
    m_->pool().persistRange(addr, sizeof(rec));
    m_->nvm().recordRun(addr, sizeof(rec), 1 + sizeof(rec) / 64);
    wal_tail_ += sizeof(rec);

    // Persist the WAL tail so recovery knows the committed prefix.
    const std::uint64_t tail = wal_tail_;
    m_->pool().cpuWrite(0, wal_.offset, &tail, 8);
    m_->pool().persistRange(wal_.offset, 8);

    memtable_[key] = value;
    if (memtable_.size() >= p_.memtable_ops)
        spillMemtable();
}

WorkloadResult
CpuPmKvs::run()
{
    setup();
    WorkloadResult r;
    const SimNs t0 = m_->now();

    const SimNs sw_ns = design_ == CpuKvsDesign::HashDirect
        ? p_.sw_op_ns_hash
        : design_ == CpuKvsDesign::LsmWal ? p_.sw_op_ns_lsm
                                          : p_.sw_op_ns_matrix;

    for (std::uint32_t b = 0; b < p_.batches; ++b) {
        Rng rng = Rng(p_.seed).split(b);
        for (std::uint32_t i = 0; i < p_.batch_ops; ++i) {
            const std::uint64_t key = rng.next() | 1;
            const std::uint64_t value = rng.next() | 1;
            rng.uniform();  // keep the stream aligned with gpKVS ops
            if (design_ == CpuKvsDesign::HashDirect)
                setHash(key, value);
            else
                setLsm(key, value);
            committed_.push_back(KvPair{key, value});
            // Engine software path (locks, allocator, index).
            m_->advance(sw_ns + m_->config().cpu_sfence_ns);
        }
        r.ops_done += p_.batch_ops;
    }
    // Media time for the scattered / WAL traffic recorded above.
    m_->nvm().closeRuns();
    r.op_ns = m_->now() - t0;
    r.persisted_payload = m_->persistPayloadBytes();

    std::uint64_t v = 0;
    r.verified = !committed_.empty() &&
                 lookup(committed_.back().key, v) &&
                 v == committed_.back().value;
    return r;
}

bool
CpuPmKvs::lookup(std::uint64_t key, std::uint64_t &value_out) const
{
    if (design_ == CpuKvsDesign::HashDirect) {
        const std::uint32_t set = static_cast<std::uint32_t>(
            GpKvs::hashKey(key) % p_.n_sets);
        for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
            const KvPair pair = m_->pool().load<KvPair>(
                store_.offset +
                (std::uint64_t(set) * GpKvsParams::kWays + w) *
                    sizeof(KvPair));
            if (pair.key == key) {
                value_out = pair.value;
                return true;
            }
        }
        return false;
    }
    auto it = memtable_.find(key);
    if (it != memtable_.end()) {
        value_out = it->second;
        return true;
    }
    it = spilled_.find(key);
    if (it != spilled_.end()) {
        value_out = it->second;
        return true;
    }
    return false;
}

bool
CpuPmKvs::crashAndRecover(double survive_prob)
{
    m_->pool().crash(survive_prob);

    if (design_ != CpuKvsDesign::HashDirect) {
        // Replay the committed WAL prefix into a fresh memtable.
        memtable_.clear();
        const std::uint64_t tail =
            m_->pool().load<std::uint64_t>(wal_.offset);
        for (std::uint64_t off = 0; off + sizeof(WalRecord) <= tail;
             off += sizeof(WalRecord)) {
            const auto rec = m_->pool().load<WalRecord>(
                wal_.offset + 64 + off);
            memtable_[rec.key] = rec.value;
        }
        m_->cpuPmRead(tail, 1);
    }

    // Every committed key must still map to its latest value.
    std::map<std::uint64_t, std::uint64_t> latest;
    for (const KvPair &pair : committed_)
        latest[pair.key] = pair.value;
    for (const auto &[key, value] : latest) {
        std::uint64_t v = 0;
        if (!lookup(key, v)) {
            // HashDirect legitimately rejects SETs into full sets.
            if (design_ == CpuKvsDesign::HashDirect)
                continue;
            return false;
        }
        if (v != value)
            return false;
    }
    return true;
}

} // namespace gpm
