/**
 * @file
 * Multi-threaded CPU-with-PM application baselines.
 *
 * These are the "CPU alternatives that use PM for persistence" behind
 * Fig 1(b) (BFS, SRAD, PS) and the OpenMP gpDB port of section 6.1.
 * Computation and persistence both happen on the CPU: work is charged
 * at the CPU's rate across the thread pool, and persistence goes
 * through the flush+drain path (scattered lines for BFS costs and DB
 * updates, streaming stores for SRAD/PS outputs).
 *
 * Each baseline computes the same functional result as its GPU
 * counterpart — the tests cross-check them.
 */
#pragma once

#include "workloads/bfs.hpp"
#include "workloads/db.hpp"
#include "workloads/prefix_sum.hpp"
#include "workloads/srad.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** CPU BFS with per-level persisted costs + frontier. */
WorkloadResult runCpuBfs(Machine &m, const BfsParams &p);

/** CPU SRAD with per-iteration persisted image + coefficients. */
WorkloadResult runCpuSrad(Machine &m, const SradParams &p);

/** CPU prefix sum with persisted partial and final sums. */
WorkloadResult runCpuPrefixSum(Machine &m, const PsParams &p);

/** CPU relational-table transactions with write-ahead logging (the
 *  OpenMP gpDB port; same recoverability guarantees). */
WorkloadResult runCpuDb(Machine &m, const GpDbParams &p,
                        GpDb::TxnKind kind);

} // namespace gpm
