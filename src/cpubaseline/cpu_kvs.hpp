/**
 * @file
 * CPU persistent key-value stores — the Fig 1a comparison points.
 *
 * Three analogs of the engines the paper benchmarks, each implementing
 * the persistence *structure* of its original:
 *
 *  - HashDirect (Intel pmemKV / cmap): an 8-way set-associative hash
 *    table living directly on PM; every SET probes the bucket, writes
 *    the pair in place and flush+fences it — scattered 256 B-RMW
 *    media traffic per operation.
 *  - LsmWal (RocksDB-pmem): a volatile memtable in front of a PM
 *    write-ahead log; SETs append to the WAL (sequential, unaligned)
 *    and the memtable spills sorted runs to PM when full, which adds
 *    compaction write amplification.
 *  - MatrixLsm (MatrixKV): the LSM with its level-0 replaced by a PM
 *    matrix container — smaller spills, less stall, lower write
 *    amplification than LsmWal.
 *
 * Timing couples the structural costs above with a per-design
 * software-path constant (locking, allocation, index maintenance —
 * engine internals out of scope here) calibrated so the absolute
 * throughputs land near Fig 1a's measured 0.4-1 Mops/s range; the
 * structural terms keep the relative ordering meaningful.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "workloads/kvs.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** Which engine analog to run. */
enum class CpuKvsDesign { HashDirect, LsmWal, MatrixLsm };

/** Display name matching Fig 1a's x-axis. */
inline const char *
cpuKvsName(CpuKvsDesign d)
{
    switch (d) {
      case CpuKvsDesign::HashDirect: return "Intel-PmemKV";
      case CpuKvsDesign::LsmWal: return "RocksDB-pmem";
      case CpuKvsDesign::MatrixLsm: return "MatrixKV";
    }
    return "?";
}

/** CPU KVS sizing and calibration constants. */
struct CpuKvsParams {
    std::uint32_t n_sets = 1u << 14;
    std::uint32_t batch_ops = 8192;
    std::uint32_t batches = 2;
    std::uint64_t seed = 42;          ///< share gpKVS's op stream
    int threads = 32;
    std::uint32_t memtable_ops = 4096;  ///< LSM spill threshold

    // Software-path cost per SET (calibrated; see file comment).
    SimNs sw_op_ns_hash = 1900;
    SimNs sw_op_ns_lsm = 1050;
    SimNs sw_op_ns_matrix = 900;
};

/** A CPU persistent KVS on a CpuOnly Machine. */
class CpuPmKvs
{
  public:
    CpuPmKvs(Machine &m, CpuKvsDesign design, const CpuKvsParams &p);

    /** Map the PM regions. */
    void setup();

    /** Run the batched SET workload (same key stream as gpKVS). */
    WorkloadResult run();

    /** Lookup through the design's read path (tests). */
    bool lookup(std::uint64_t key, std::uint64_t &value_out) const;

    /**
     * Crash and recover: the hash design is always consistent
     * per-op; the LSM designs replay the WAL into a fresh memtable.
     * Returns false if any committed key is missing afterwards.
     */
    bool crashAndRecover(double survive_prob);

    CpuKvsDesign design() const { return design_; }

  private:
    void setHash(std::uint64_t key, std::uint64_t value);
    void setLsm(std::uint64_t key, std::uint64_t value);
    void spillMemtable();

    Machine *m_;
    CpuKvsDesign design_;
    CpuKvsParams p_;
    PmRegion store_;    ///< hash table / sorted-run area
    PmRegion wal_;      ///< LSM write-ahead log
    std::uint64_t wal_tail_ = 0;
    std::uint64_t run_tail_ = 0;  ///< next spill position in store_
    std::map<std::uint64_t, std::uint64_t> memtable_;
    std::map<std::uint64_t, std::uint64_t> spilled_;  ///< run index
    std::vector<KvPair> committed_;  ///< reference of applied SETs
};

} // namespace gpm
