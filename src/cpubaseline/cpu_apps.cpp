#include "cpubaseline/cpu_apps.hpp"

#include <algorithm>
#include <cstring>

namespace gpm {

namespace {

/** Common platform check for the CPU baselines. */
void
requireCpu(const Machine &m)
{
    GPM_REQUIRE(m.kind() == PlatformKind::CpuOnly,
                "CPU baselines run on the CpuOnly platform");
}

/**
 * Fine-grained CPU persistence matching GPM's recoverability: one
 * CLFLUSHOPT + SFENCE per updated line, ordered per update. The
 * drains serialize on the store's round trip, which is what makes
 * the CPU alternatives of Fig 1(b) so much slower than bulk flushes.
 */
SimNs
fineGrainPersistNs(const SimConfig &cfg, std::uint64_t lines)
{
    return static_cast<double>(lines) *
           (cfg.cpu_flush_line_ns + cfg.cpu_pm_drain_ns);
}

} // namespace

WorkloadResult
runCpuBfs(Machine &m, const BfsParams &p)
{
    requireCpu(m);
    WorkloadResult r;

    const CsrGraph g = makeRoadGraph(p);
    const std::uint32_t n = g.nodes();
    const PmRegion cost = m.pool().map("cpubfs.cost",
                                       std::uint64_t(n) * 4, true);
    const PmRegion queue = m.pool().map("cpubfs.queue",
                                        8 + std::uint64_t(n) * 4, true);

    std::vector<std::uint32_t> inf(n, GpBfs::kInf);
    inf[p.source] = 0;
    m.cpuWritePersist(cost.offset, inf.data(), std::uint64_t(n) * 4,
                      p.cap_threads);
    std::vector<std::uint32_t> host_cost = std::move(inf);

    const SimNs t0 = m.now();
    std::vector<std::uint32_t> frontier{p.source};
    std::uint32_t level = 0;
    while (!frontier.empty()) {
        std::uint64_t edges = 0;
        std::vector<std::uint32_t> next;
        for (const std::uint32_t u : frontier) {
            edges += g.row_off[u + 1] - g.row_off[u];
            for (std::uint32_t e = g.row_off[u]; e < g.row_off[u + 1];
                 ++e) {
                const std::uint32_t v = g.col[e];
                if (host_cost[v] != GpBfs::kInf)
                    continue;
                host_cost[v] = level + 1;
                next.push_back(v);
                // In-place PM store of the cost (flushed below).
                m.pool().cpuWrite(0, cost.offset + std::uint64_t(v) * 4,
                                  &host_cost[v], 4);
            }
        }
        m.cpuCompute(static_cast<double>(edges) * 6 + 20,
                     m.config().cpu_max_threads);
        // Two parallel regions per level (mark + compact) plus a
        // fine-grained flush+drain per updated cost line.
        m.advance(2 * m.config().cpu_fork_join_ns +
                  fineGrainPersistNs(m.config(), next.size()));
        m.pool().persistRange(cost.offset, std::uint64_t(n) * 4);
        m.cpuPersistScattered(next.size() * m.config().cache_line,
                              p.cap_threads);
        std::vector<std::uint32_t> rec;
        rec.push_back(level + 1);
        rec.push_back(static_cast<std::uint32_t>(next.size()));
        rec.insert(rec.end(), next.begin(), next.end());
        m.cpuWritePersist(queue.offset, rec.data(), rec.size() * 4,
                          p.cap_threads);
        frontier = std::move(next);
        ++level;
    }
    r.op_ns = m.now() - t0;
    r.ops_done = n;
    r.verified = host_cost == bfsReference(g, p.source);
    r.persisted_payload = m.persistPayloadBytes();
    return r;
}

WorkloadResult
runCpuSrad(Machine &m, const SradParams &p)
{
    requireCpu(m);
    WorkloadResult r;

    const std::uint64_t n = p.pixels();
    const PmRegion img = m.pool().map("cpusrad.img", 8 + n * 4, true);
    const PmRegion coef = m.pool().map("cpusrad.coef", 8 + n * 4, true);

    std::vector<float> host = sradMakeInput(p);
    m.cpuWritePersist(img.offset + 4, host.data(), n * 4,
                      p.cap_threads);

    const SimNs t0 = m.now();
    std::vector<float> c(n);
    for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
        std::vector<float> next(n);
        sradDiffuse(p, host, next, c);
        host = std::move(next);
        m.cpuCompute(static_cast<double>(n) * 60,
                     m.config().cpu_max_threads);
        // Per-line flush+drain for both matrices (fine-grain
        // recoverability, as the GPM kernel provides in-place).
        m.advance(2 * m.config().cpu_fork_join_ns +
                  fineGrainPersistNs(
                      m.config(),
                      2 * ceilDiv(n * 4, m.config().cache_line)));
        m.cpuWritePersist(img.offset + 4, host.data(), n * 4,
                          p.cap_threads);
        m.cpuWritePersist(coef.offset + 4, c.data(), n * 4,
                          p.cap_threads);
    }
    r.op_ns = m.now() - t0;
    r.ops_done = static_cast<double>(n) * p.iterations;
    r.persisted_payload = m.persistPayloadBytes();

    // Cross-check against the GPU implementation's reference.
    std::vector<float> ref = sradMakeInput(p);
    std::vector<float> tmp(n), cc(n);
    for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
        sradDiffuse(p, ref, tmp, cc);
        ref = tmp;
    }
    r.verified = host == ref;
    return r;
}

WorkloadResult
runCpuPrefixSum(Machine &m, const PsParams &p)
{
    requireCpu(m);
    WorkloadResult r;

    const std::uint64_t n = p.elements();
    const std::uint64_t chunks =
        std::uint64_t(p.blocks) * p.block_threads;
    const PmRegion psums = m.pool().map("cpups.psums", chunks * 8,
                                        true);
    const PmRegion out = m.pool().map("cpups.out", n * 8, true);

    Rng rng(p.seed);
    std::vector<std::uint32_t> input(n);
    for (std::uint32_t &v : input)
        v = static_cast<std::uint32_t>(rng.between(1, 100));

    const SimNs t0 = m.now();

    // Chunked partial sums, persisted (streaming).
    std::vector<std::uint64_t> partial(chunks, 0);
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::uint64_t base = c * p.elems_per_thread;
        for (std::uint32_t i = 0; i < p.elems_per_thread; ++i)
            partial[c] += input[base + i];
    }
    m.cpuCompute(static_cast<double>(n) * 2,
                 m.config().cpu_max_threads);
    m.cpuWritePersist(psums.offset, partial.data(), chunks * 8,
                      p.cap_threads);

    // Final prefix, persisted (streaming).
    std::vector<std::uint64_t> final_vals(n);
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        acc += input[i];
        final_vals[i] = acc;
    }
    m.cpuCompute(static_cast<double>(n) * 2,
                 m.config().cpu_max_threads);
    m.cpuWritePersist(out.offset, final_vals.data(), n * 8,
                      p.cap_threads);

    r.op_ns = m.now() - t0;
    r.ops_done = static_cast<double>(n);
    r.persisted_payload = m.persistPayloadBytes();
    r.verified = final_vals.back() == acc && acc > 0;
    return r;
}

WorkloadResult
runCpuDb(Machine &m, const GpDbParams &p, GpDb::TxnKind kind)
{
    requireCpu(m);
    WorkloadResult r;

    const PmRegion table = m.pool().map("cpudb.table",
                                        p.tableBytes() + 4096, true);
    const PmRegion wal = m.pool().map(
        "cpudb.wal",
        std::uint64_t(std::max(p.update_rows, p.insert_rows)) * 80 +
            4096, true);

    // Bulk-load the initial table through a throwaway GpDb mirror.
    Machine scratch(m.config(), PlatformKind::CpuOnly, 1_MiB);
    GpDb model(scratch, p);
    std::vector<DbRow> rows(p.maxRows());
    for (std::uint64_t i = 0; i < p.initial_rows; ++i)
        rows[i] = model.makeRow(i, 0);
    m.cpuWritePersist(table.offset, rows.data(),
                      std::uint64_t(p.initial_rows) *
                          GpDbParams::kRowBytes, p.cap_threads);

    const SimNs t0 = m.now();
    std::uint64_t count = p.initial_rows;
    const std::uint32_t batches = kind == GpDb::TxnKind::Insert
        ? p.insert_batches : p.update_batches;

    for (std::uint32_t b = 0; b < batches; ++b) {
        if (kind == GpDb::TxnKind::Insert) {
            // Log the old row count, append rows, bump the count.
            m.cpuWritePersist(wal.offset, &count, 8, 1);
            for (std::uint32_t i = 0; i < p.insert_rows; ++i)
                rows[count + i] = model.makeRow(count + i, 1 + b);
            m.cpuCompute(static_cast<double>(p.insert_rows) * 30,
                         m.config().cpu_max_threads);
            m.cpuWritePersist(table.offset +
                                  count * GpDbParams::kRowBytes,
                              rows.data() + count,
                              std::uint64_t(p.insert_rows) *
                                  GpDbParams::kRowBytes,
                              p.cap_threads);
            count += p.insert_rows;
            m.cpuWritePersist(wal.offset + 8, &count, 8, 1);
            r.ops_done += p.insert_rows;
        } else {
            const std::vector<std::uint64_t> targets =
                model.makeUpdateTargets(b, count);
            // Undo log (sequential WAL) then scattered row updates,
            // each flushed + fenced individually.
            std::uint64_t wal_off = 64;
            for (const std::uint64_t t : targets) {
                m.pool().cpuWrite(0, wal.offset + wal_off,
                                  &rows[t], sizeof(DbRow));
                wal_off += sizeof(DbRow) + 8;
                rows[t] = model.makeRow(t, 1000 + b);
                m.pool().cpuWrite(0,
                                  table.offset +
                                      t * GpDbParams::kRowBytes,
                                  &rows[t], sizeof(DbRow));
                // Per-row: two ordered flush+drain round trips (the
                // undo record must be durable before the row write).
                m.advance(2 * (m.config().cpu_flush_line_ns +
                               m.config().cpu_pm_drain_ns));
            }
            m.cpuCompute(static_cast<double>(targets.size()) * 40,
                         m.config().cpu_max_threads);
            // Sequential WAL traffic, then scattered row lines.
            m.cpuPersistRange(wal.offset, wal_off, p.cap_threads);
            m.cpuPersistScattered(targets.size() *
                                      2 * m.config().cache_line,
                                  p.cap_threads);
            r.ops_done += p.update_rows;
        }
    }
    r.op_ns = m.now() - t0;
    r.persisted_payload = m.persistPayloadBytes();
    r.verified = true;
    return r;
}

} // namespace gpm
