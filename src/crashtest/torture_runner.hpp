/**
 * @file
 * The crash-matrix torture runner: sweep every registered workload's
 * recovery invariant across crash points x eviction seeds x persist
 * domains, classify each scenario, and report a scenario x outcome
 * table plus a determinism signature.
 *
 * Classification policy (what counts as a violation):
 *
 *  - An exception anywhere in the scenario is a violation: recovery
 *    must never panic, whatever the durable state looks like.
 *  - A strict-invariant failure in a fence-persisting domain
 *    (mc-durable, llc-durable) is a violation: the recovery
 *    protocols are designed to be correct there.
 *  - A strict failure under llc-volatile is the *expected* DDIO trap
 *    (section 6.1): fences order writes but persist nothing, so data
 *    loss is the correct model outcome. Recorded, not a violation.
 *  - Pool-counter inconsistencies are violations: a scenario must
 *    crash exactly once; zero line survival must leave zero
 *    survivors; under eADR nothing is ever pending, so the 128 B
 *    tearing loop must never run.
 *
 * The report's signature() folds every scenario's outcome (including
 * recovered-state hashes) into one FNV-1a value: two sweeps of the
 * same config must produce identical signatures, byte for byte.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "crashtest/crash_scheduler.hpp"
#include "crashtest/recovery_invariant.hpp"

namespace gpm {

/** One cell of the matrix. */
struct TortureScenario {
    std::string workload;
    PersistDomain domain = PersistDomain::McDurable;
    CrashSpec spec;
    std::uint64_t seed = 1;
    double survive_prob = 0.0;

    /** In-scenario executor width (copied from TortureConfig). Not an
     *  axis and not folded into key()/signature(): every width yields
     *  bit-identical outcomes (DESIGN.md decision #8). */
    int exec_workers = 1;

    /** Media backend (copied from TortureConfig). Not an axis and not
     *  folded into key()/signature(): media models are timing-only, so
     *  every backend yields bit-identical functional outcomes. */
    MediaConfig media{};
};

/** How a scenario is classified. */
enum class OutcomeClass : std::uint8_t {
    StrictOk,   ///< recovered state passed the strict invariant
    DdioTrap,   ///< strict failed under llc-volatile (expected loss)
    NotFired,   ///< crash point beyond the kernel; commit state OK
    Violation,  ///< recovery bug: see TortureResult::detail
};

const char *outcomeClassName(OutcomeClass c);

/** One swept scenario with its outcome and classification. */
struct TortureResult {
    TortureScenario scenario;
    TortureOutcome outcome;
    OutcomeClass cls = OutcomeClass::Violation;
    std::string detail;  ///< why a violation is a violation

    /**
     * Scenario key, e.g. "kvs/mc-durable/frac:0.50/s3/p0.50".
     * Memoized: built once per result (the span label and signature()
     * both read it), cached for every later use.
     */
    const std::string &key() const;

  private:
    mutable std::string key_;  ///< lazily built from scenario
};

/** What to sweep. Empty vectors mean "the default axis". */
struct TortureConfig {
    std::vector<std::string> workloads;   ///< default: all registered
    std::vector<PersistDomain> domains;   ///< default: all three
    std::vector<CrashSpec> specs;         ///< default: CrashGrid grid
    std::vector<std::uint64_t> seeds;     ///< default: {1..5}
    std::vector<double> survive_probs;    ///< default: {0.0, 0.5}

    /**
     * Sweep workers (0 = one per hardware thread). Every scenario
     * constructs a private Machine + PmPool and results land in
     * canonical slots, so the report — order, counts, signature — is
     * bit-identical at any worker count (see DESIGN.md "Sweep
     * engine"); only host wall-clock changes.
     */
    int jobs = 1;

    /**
     * In-scenario executor width (SimConfig::exec_workers) applied to
     * every scenario's Machine; 0 means one lane per hardware thread.
     * Orthogonal to jobs: jobs parallelizes *across* scenarios, this
     * parallelizes block execution *inside* each one. The signature is
     * bit-identical at any width, so jobs x exec_workers is purely a
     * wall-clock trade (oversubscription caps the useful product at
     * the host's core count).
     */
    int exec_workers = 1;

    /**
     * Media backend (SimConfig::media) applied to every scenario's
     * Machine. Like exec_workers, not an axis and never part of the
     * signature: PmPool owns functional durability, media models only
     * price the traffic, so a signature pinned under the default NVM
     * backend must reproduce under every other backend (CI sweeps all
     * four and diffs the signatures).
     */
    MediaConfig media{};

    /** Fill every empty axis with its default. */
    void applyDefaults();

    std::size_t scenarioCount() const;
};

/** The sweep's results. */
struct TortureReport {
    std::vector<TortureResult> results;

    std::size_t violations() const;

    /** All four class counts in one pass over the results. */
    std::array<std::size_t, 4> classCounts() const;

    /** One class's count (classCounts() when you need several). */
    std::size_t countOf(OutcomeClass c) const;

    /** Order-sensitive FNV-1a over every scenario outcome. */
    std::uint64_t signature() const;

    /** Full scenario x outcome table. */
    Table table() const;

    /** Per workload x domain classification counts. */
    Table summary() const;
};

/**
 * Apply the classification policy from the file header to @p r
 * (reads r.scenario + r.outcome, writes r.cls + r.detail). Exposed so
 * gpmcheck's witness replay classifies single scenarios with exactly
 * the torture matrix's policy.
 */
void classifyScenario(TortureResult &r);

/** Deterministically sweeps a TortureConfig. */
class TortureRunner
{
  public:
    /**
     * Flatten the five config axes into the canonical scenario order
     * (workload, domain, spec, seed, survive_prob — outermost first).
     * run() sweeps exactly this vector; report.results[i] is the
     * outcome of enumerate(cfg)[i].
     */
    static std::vector<TortureScenario> enumerate(
        const TortureConfig &cfg);

    static TortureReport run(const TortureConfig &cfg);
};

} // namespace gpm
