#include "crashtest/recovery_invariant.hpp"

#include <algorithm>
#include <exception>

#include "common/status.hpp"
#include "common/units.hpp"
#include "memsim/media_backend.hpp"
#include "platform/machine.hpp"
#include "workloads/db.hpp"
#include "workloads/kvs.hpp"
#include "workloads/prefix_sum.hpp"
#include "workloads/srad.hpp"

namespace gpm {

DomainSetup
domainSetupFor(PersistDomain d)
{
    switch (d) {
      case PersistDomain::McDurable:
        return {d, PlatformKind::Gpm, true};
      case PersistDomain::LlcVolatile:
        return {d, PlatformKind::Gpm, false};
      case PersistDomain::LlcDurable:
        return {d, PlatformKind::GpmEadr, true};
    }
    return {};
}

const char *
persistDomainName(PersistDomain d)
{
    switch (d) {
      case PersistDomain::LlcVolatile:
        return "llc-volatile";
      case PersistDomain::McDurable:
        return "mc-durable";
      case PersistDomain::LlcDurable:
        return "llc-durable";
    }
    return "?";
}

PersistDomain
parsePersistDomain(const std::string &name)
{
    if (name == "llc-volatile")
        return PersistDomain::LlcVolatile;
    if (name == "mc-durable")
        return PersistDomain::McDurable;
    if (name == "llc-durable")
        return PersistDomain::LlcDurable;
    fatal("unknown persist domain '", name,
          "' (llc-volatile | mc-durable | llc-durable)");
}

namespace {

/** Shared adapter boilerplate: machine setup, stats, error capture. */
template <typename Body>
TortureOutcome
runScenario(const DomainSetup &setup, std::uint64_t seed, Body &&body)
{
    TortureOutcome o;
    try {
        SimConfig cfg;
        cfg.exec_workers = setup.exec_workers;
        applyMediaConfig(cfg, setup.media);
        // Scaled-down workloads: a small pool keeps the per-scenario
        // allocation cost from dominating thousand-cell sweeps.
        Machine m(cfg, setup.kind, 8_MiB, seed);
        if (setup.recorder)
            m.pool().setRecorder(setup.recorder);
        const CrashOutcome c = body(m);
        o.fired = c.fired;
        o.recovery_ran = c.recovery_ran;
        o.strict_ok = c.strict_ok;
        o.state_hash = c.state_hash;
        const PmPoolStats &st = m.pool().stats();
        o.crashes = st.crashes;
        o.crash_sub_extents = st.crash_sub_extents;
        o.crash_survivors = st.crash_survivors;
    } catch (const std::exception &e) {
        o.error = e.what();
    }
    return o;
}

/** gpKVS: undo-log transactional batches, crash batch 1 of 3. */
class KvsInvariant : public RecoveryInvariant
{
  public:
    std::string name() const override { return "kvs"; }

    std::uint64_t
    doomedThreadPhases() const override
    {
        return std::uint64_t(params().batch_ops) * GpKvsParams::kGroup;
    }

    TortureOutcome
    run(const DomainSetup &setup, const CrashPoint &point,
        std::uint64_t seed, double survive_prob) override
    {
        return runScenario(setup, seed, [&](Machine &m) {
            GpKvs kvs(m, params());
            return kvs.runCrashPoint(1, point, survive_prob,
                                     setup.open_persist_window);
        });
    }

  private:
    static GpKvsParams
    params()
    {
        GpKvsParams p;
        p.n_sets = 1u << 9;
        p.batch_ops = 512;
        p.batches = 3;
        return p;
    }
};

/** gpDB INSERT or UPDATE batches, crash batch 1 of 2. */
class DbInvariant : public RecoveryInvariant
{
  public:
    explicit DbInvariant(GpDb::TxnKind kind) : kind_(kind) {}

    std::string
    name() const override
    {
        return kind_ == GpDb::TxnKind::Insert ? "db-insert"
                                              : "db-update";
    }

    std::uint64_t
    doomedThreadPhases() const override
    {
        const GpDbParams p = params();
        const std::uint32_t rows = kind_ == GpDb::TxnKind::Insert
                                       ? p.insert_rows
                                       : p.update_rows;
        return alignUp(std::uint64_t(rows), 256);
    }

    TortureOutcome
    run(const DomainSetup &setup, const CrashPoint &point,
        std::uint64_t seed, double survive_prob) override
    {
        return runScenario(setup, seed, [&](Machine &m) {
            GpDb db(m, params());
            return db.runCrashPoint(kind_, 1, point, survive_prob,
                                    setup.open_persist_window);
        });
    }

  private:
    static GpDbParams
    params()
    {
        GpDbParams p;
        p.initial_rows = 4096;
        p.insert_rows = 1024;
        p.update_rows = 512;
        p.insert_batches = 2;
        p.update_batches = 2;
        return p;
    }

    GpDb::TxnKind kind_;
};

/** Prefix sum: Figure 8's sentinel-ordered native recovery. */
class PsInvariant : public RecoveryInvariant
{
  public:
    std::string name() const override { return "prefix-sum"; }

    std::uint64_t
    doomedThreadPhases() const override
    {
        const PsParams p = params();
        // Two phases per thread in the partial-sums kernel.
        return 2ull * p.blocks * p.block_threads;
    }

    TortureOutcome
    run(const DomainSetup &setup, const CrashPoint &point,
        std::uint64_t seed, double survive_prob) override
    {
        return runScenario(setup, seed, [&](Machine &m) {
            GpPrefixSum ps(m, params());
            return ps.runCrashPoint(point, survive_prob,
                                    setup.open_persist_window);
        });
    }

  private:
    static PsParams
    params()
    {
        PsParams p;
        p.blocks = 8;
        p.block_threads = 64;
        p.elems_per_thread = 4;
        return p;
    }
};

/** SRAD: double-buffered iteration counter recovery, crash iter 1. */
class SradInvariant : public RecoveryInvariant
{
  public:
    std::string name() const override { return "srad"; }

    std::uint64_t
    doomedThreadPhases() const override
    {
        const SradParams p = params();
        const std::uint64_t blocks = std::max<std::uint64_t>(
            1, ceilDiv(p.pixels(), std::uint64_t(256) * 15));
        return blocks * 256;
    }

    TortureOutcome
    run(const DomainSetup &setup, const CrashPoint &point,
        std::uint64_t seed, double survive_prob) override
    {
        return runScenario(setup, seed, [&](Machine &m) {
            GpSrad srad(m, params());
            return srad.runCrashPoint(1, point, survive_prob,
                                      setup.open_persist_window);
        });
    }

  private:
    static SradParams
    params()
    {
        SradParams p;
        p.width = 64;
        p.height = 32;
        p.iterations = 3;
        return p;
    }
};

} // namespace

std::vector<std::string>
registeredInvariants()
{
    return {"kvs", "db-insert", "db-update", "prefix-sum", "srad"};
}

std::vector<std::string>
extendedInvariants()
{
    return {"serve", "pmheap"};
}

std::unique_ptr<RecoveryInvariant>
makeInvariant(const std::string &name)
{
    if (name == "kvs")
        return std::make_unique<KvsInvariant>();
    if (name == "db-insert")
        return std::make_unique<DbInvariant>(GpDb::TxnKind::Insert);
    if (name == "db-update")
        return std::make_unique<DbInvariant>(GpDb::TxnKind::Update);
    if (name == "prefix-sum")
        return std::make_unique<PsInvariant>();
    if (name == "srad")
        return std::make_unique<SradInvariant>();
    if (name == "serve")
        return makeServeInvariant();
    if (name == "pmheap")
        return makePmheapInvariant();
    std::string valid;
    for (const std::string &n : registeredInvariants())
        valid += valid.empty() ? n : ", " + n;
    for (const std::string &n : extendedInvariants())
        valid += ", " + n;
    fatal("unknown torture workload '", name, "' (valid: ", valid, ")");
}

} // namespace gpm
