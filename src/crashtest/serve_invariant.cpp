/**
 * @file
 * The "serve" torture adapter: a power failure in the middle of live
 * serving traffic.
 *
 * Where the other invariants crash one kernel of one workload on one
 * Machine, this one drives the full ServiceEngine — closed-loop
 * clients, dynamic batching, and *two* key-sharded Machine+PmPool
 * pipelines — and dooms a mid-traffic batch launch (global launch
 * ordinal kCrashLaunch). The strict invariant is the serving-path
 * durability contract: after the power failure hits every shard pool
 * and each shard runs reboot recovery, every shard's durable store
 * must equal its oracle mirror (zero acknowledged-write loss, the
 * doomed transaction rolled back whole) and no response delivered
 * before the crash may contradict the oracle.
 *
 * This adapter is *extended*: reachable through makeInvariant / the
 * --workloads flag, but not part of registeredInvariants(), so the
 * pinned default and scale sweep signatures are untouched.
 */
#include "crashtest/recovery_invariant.hpp"

#include <exception>

#include "service/serve_engine.hpp"
#include "workloads/kvs.hpp"

namespace gpm {

namespace {

/** Ops per closed batch. 64 x kGroup = 512 threads fills the 2-block
 *  grid exactly, so doomedThreadPhases() is exact, not an upper
 *  bound, whenever the doomed batch is full — which the saturated
 *  config below guarantees in steady state. */
constexpr std::uint32_t kBatchMax = 64;

/** Global launch ordinal to doom: late enough that both shards have
 *  committed (and acked) earlier batches, early enough that the
 *  queues are still saturated with closed-loop traffic. */
constexpr std::int64_t kCrashLaunch = 6;

class ServeInvariant : public RecoveryInvariant
{
  public:
    std::string name() const override { return "serve"; }

    std::uint64_t
    doomedThreadPhases() const override
    {
        return std::uint64_t(kBatchMax) * GpKvsParams::kGroup;
    }

    TortureOutcome
    run(const DomainSetup &setup, const CrashPoint &point,
        std::uint64_t seed, double survive_prob) override
    {
        TortureOutcome o;
        try {
            ServeConfig sc;
            sc.platform = setup.kind;
            sc.open_persist_window = setup.open_persist_window;
            sc.exec_workers = setup.exec_workers;
            sc.media = setup.media;
            // Saturated small-store config: 8x batch_max clients with
            // zero think time keep both admission queues deep, so
            // every launch up to the doomed one is a full batch.
            sc.shards = 2;
            sc.n_sets = 1u << 9;
            sc.clients = kBatchMax * 8;
            sc.requests = 4096;
            sc.batch_max = kBatchMax;
            sc.batch_deadline_ns = 1e6;
            sc.queue_depth = 256;
            sc.think_ns = 0.0;
            sc.get_ratio = 0.3;
            sc.del_ratio = 0.1;
            sc.key_space = 1u << 12;
            sc.seed = seed;
            sc.jobs = 1;  // parallelism lives at the torture level
            sc.crash_at_launch = kCrashLaunch;
            sc.crash_point = point;
            sc.survive_prob = survive_prob;

            ServiceEngine engine(sc);
            const ServeReport r = engine.run();

            o.fired = r.crash_fired;
            o.recovery_ran = r.recovery_ran;
            o.strict_ok = r.durable_ok && r.oracle_failures == 0;
            o.state_hash = r.state_hash;
            // The power failure hits every shard pool exactly once
            // (crashAndRecover crashes them in one pass), so the
            // summed count collapses to the runner's one-crash
            // bookkeeping; anything else is reported raw and flags a
            // violation.
            o.crashes =
                r.pool_crashes == sc.shards ? 1 : r.pool_crashes;
            o.crash_sub_extents = r.crash_sub_extents;
            o.crash_survivors = r.crash_survivors;
        } catch (const std::exception &e) {
            o.error = e.what();
        }
        return o;
    }
};

} // namespace

std::unique_ptr<RecoveryInvariant>
makeServeInvariant()
{
    return std::make_unique<ServeInvariant>();
}

} // namespace gpm
