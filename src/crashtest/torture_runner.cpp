#include "crashtest/torture_runner.hpp"

#include <array>
#include <cstdio>
#include <map>
#include <utility>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "harness/sweep.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

const char *
outcomeClassName(OutcomeClass c)
{
    switch (c) {
      case OutcomeClass::StrictOk:
        return "strict-ok";
      case OutcomeClass::DdioTrap:
        return "ddio-trap";
      case OutcomeClass::NotFired:
        return "not-fired";
      case OutcomeClass::Violation:
        return "VIOLATION";
    }
    return "?";
}

const std::string &
TortureResult::key() const
{
    if (key_.empty()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "/s%llu/p%.2f",
                      static_cast<unsigned long long>(scenario.seed),
                      scenario.survive_prob);
        key_ = scenario.workload + "/" +
               persistDomainName(scenario.domain) + "/" +
               scenario.spec.label() + buf;
    }
    return key_;
}

void
TortureConfig::applyDefaults()
{
    if (workloads.empty())
        workloads = registeredInvariants();
    if (domains.empty())
        domains = {PersistDomain::LlcVolatile, PersistDomain::McDurable,
                   PersistDomain::LlcDurable};
    if (specs.empty())
        specs = CrashScheduler::enumerate(CrashGrid::defaults());
    if (seeds.empty())
        seeds = {1, 2, 3, 4, 5};
    if (survive_probs.empty())
        survive_probs = {0.0, 0.5};
}

std::size_t
TortureConfig::scenarioCount() const
{
    return workloads.size() * domains.size() * specs.size() *
           seeds.size() * survive_probs.size();
}

/** Apply the policy in the file header of torture_runner.hpp. */
void
classifyScenario(TortureResult &r)
{
    const TortureOutcome &o = r.outcome;
    const auto violation = [&](std::string why) {
        r.cls = OutcomeClass::Violation;
        r.detail = std::move(why);
    };

    if (!o.error.empty())
        return violation("exception: " + o.error);
    if (o.crashes != 1)
        return violation("pool crashed " + std::to_string(o.crashes) +
                         " times, expected exactly 1");
    if (r.scenario.survive_prob == 0.0 && o.crash_survivors != 0)
        return violation("survivors with zero survival probability");
    if (o.crash_survivors > o.crash_sub_extents)
        return violation("more survivors than tearing decisions");
    if (r.scenario.domain == PersistDomain::LlcDurable &&
        o.crash_sub_extents != 0)
        return violation("eADR crash ran the 128 B tearing loop");

    if (!o.strict_ok) {
        if (r.scenario.domain == PersistDomain::LlcVolatile) {
            r.cls = OutcomeClass::DdioTrap;
            return;
        }
        return violation("strict invariant failed in a "
                         "fence-persisting domain");
    }
    r.cls = o.fired ? OutcomeClass::StrictOk : OutcomeClass::NotFired;
}

std::size_t
TortureReport::violations() const
{
    return countOf(OutcomeClass::Violation);
}

std::array<std::size_t, 4>
TortureReport::classCounts() const
{
    std::array<std::size_t, 4> counts{};
    for (const TortureResult &r : results)
        ++counts[static_cast<std::size_t>(r.cls)];
    return counts;
}

std::size_t
TortureReport::countOf(OutcomeClass c) const
{
    return classCounts()[static_cast<std::size_t>(c)];
}

std::uint64_t
TortureReport::signature() const
{
    std::uint64_t h = kFnvOffset;
    for (const TortureResult &r : results) {
        h = fnv1aStr(r.key(), h);
        h = fnv1aU64(r.outcome.fired, h);
        h = fnv1aU64(r.outcome.recovery_ran, h);
        h = fnv1aU64(r.outcome.strict_ok, h);
        h = fnv1aU64(r.outcome.state_hash, h);
        h = fnv1aU64(static_cast<std::uint64_t>(r.cls), h);
    }
    return h;
}

Table
TortureReport::table() const
{
    Table t({"workload", "domain", "crash-point", "seed", "survive",
             "fired", "recovered", "strict", "outcome"});
    for (const TortureResult &r : results) {
        t.addRow({r.scenario.workload,
                  persistDomainName(r.scenario.domain),
                  r.scenario.spec.label(),
                  std::to_string(r.scenario.seed),
                  Table::num(r.scenario.survive_prob),
                  r.outcome.fired ? "y" : "n",
                  r.outcome.recovery_ran ? "y" : "n",
                  r.outcome.strict_ok ? "y" : "n",
                  outcomeClassName(r.cls)});
    }
    return t;
}

Table
TortureReport::summary() const
{
    // (workload, domain) -> counts per class.
    std::map<std::pair<std::string, std::string>, std::array<int, 4>>
        cells;
    for (const TortureResult &r : results) {
        auto &c = cells[{r.scenario.workload,
                         persistDomainName(r.scenario.domain)}];
        ++c[static_cast<int>(r.cls)];
    }
    Table t({"workload", "domain", "strict-ok", "ddio-trap",
             "not-fired", "violations"});
    for (const auto &[key, c] : cells) {
        t.addRow({key.first, key.second,
                  std::to_string(c[0]), std::to_string(c[1]),
                  std::to_string(c[2]), std::to_string(c[3])});
    }
    return t;
}

namespace {

/**
 * Run one scenario end to end: a private invariant adapter and a
 * private Machine + PmPool world, so scenarios are independent and
 * the sweep may run them on any worker in any order.
 */
TortureResult
runScenarioCell(SweepLane &lane, const TortureScenario &sc)
{
    TortureResult r;
    r.scenario = sc;
    const std::unique_ptr<RecoveryInvariant> inv =
        makeInvariant(sc.workload);
    DomainSetup setup = domainSetupFor(sc.domain);
    setup.exec_workers = sc.exec_workers;
    setup.media = sc.media;
    const CrashPoint point =
        sc.spec.materialize(inv->doomedThreadPhases());
    {
        // Building key() costs a string; skip it (and the span)
        // unless tracing is live.
        const bool traced = telemetry::enabled();
        telemetry::Span span(traced ? "scenario" : nullptr,
                             traced ? std::string_view(r.key())
                                    : std::string_view());
        r.outcome = inv->run(setup, point, sc.seed, sc.survive_prob);
        classifyScenario(r);
        if (span.armed())
            span.arg("outcome", outcomeClassName(r.cls));
    }
    lane.count("torture.scenarios");
    if (r.cls == OutcomeClass::Violation)
        lane.count("torture.violations");
    return r;
}

} // namespace

std::vector<TortureScenario>
TortureRunner::enumerate(const TortureConfig &cfg)
{
    std::vector<TortureScenario> scenarios;
    scenarios.reserve(cfg.scenarioCount());
    for (const std::string &name : cfg.workloads)
        for (const PersistDomain domain : cfg.domains)
            for (const CrashSpec &spec : cfg.specs)
                for (const std::uint64_t seed : cfg.seeds)
                    for (const double p : cfg.survive_probs)
                        scenarios.push_back({name, domain, spec, seed,
                                             p, cfg.exec_workers,
                                             cfg.media});
    return scenarios;
}

TortureReport
TortureRunner::run(const TortureConfig &cfg_in)
{
    TortureConfig cfg = cfg_in;
    cfg.applyDefaults();

    // The canonical enumeration order is the report order: sweep
    // results land in their scenario's slot regardless of which
    // worker ran it, so the table, counts and signature are
    // bit-identical at any cfg.jobs.
    const std::vector<TortureScenario> scenarios = enumerate(cfg);
    SweepOptions opt;
    opt.workers = cfg.jobs;
    // Invariant adapters never throw (failures land in
    // outcome.error), so fail-fast only trips on runner bugs.
    TortureReport report;
    report.results = sweep(scenarios, runScenarioCell, opt);
    return report;
}

} // namespace gpm
