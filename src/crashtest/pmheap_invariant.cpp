/**
 * @file
 * The "pmheap" torture adapter: allocator + container crash
 * consistency under the full crash-point grammar.
 *
 * Drives a GpmMap (directory + GpmHeap slots) through batches of
 * allocate / overwrite / delete traffic, dooms one mid-stream batch
 * with the armed CrashPoint on either the payload-staging launch
 * (odd seeds — the record was never committed, recovery must discard
 * everything) or the publication launch (even seeds — the record is
 * durable, recovery must roll the whole batch forward), power-fails
 * the pool, reboots through GpmMap::recover(), and then *keeps
 * serving* a post-recovery batch on the rebuilt free lists.
 *
 * The strict invariant is exact-state: the durable directory, every
 * reachable payload, and the allocation bitmap must equal the host
 * oracle for the precisely-predicted state (batch boundary chosen by
 * where the crash hit), and the directory-handle set must be in
 * bijection with the bitmap — which is simultaneously a leak check
 * (no bit without a reference) and a double-allocation check (no two
 * references to one slot).
 *
 * Extended adapter: reachable via --workloads pmheap, not part of
 * registeredInvariants(), so the pinned default/scale signatures are
 * untouched.
 */
#include "crashtest/recovery_invariant.hpp"

#include <exception>
#include <map>
#include <vector>

#include "common/hash.hpp"
#include "common/units.hpp"
#include "gpm/gpm_runtime.hpp"
#include "pmheap/gpm_map.hpp"

namespace gpm {

namespace {

constexpr std::uint32_t kBatches = 4;
constexpr std::uint32_t kDoomedBatch = 2;
constexpr std::uint32_t kOpsPerBatch = 64;
constexpr std::uint32_t kKeySpace = 96;
constexpr std::uint32_t kMaxLen = 256;

GpmMapParams
mapParams()
{
    GpmMapParams p;
    p.name = "pmheap";
    p.n_groups = 64;
    p.heap.class_sizes = {16, 32, 64, 128, 256};
    // Worst case per class: every live key (<= kKeySpace) plus every
    // doomed-batch allocation (<= kOpsPerBatch) in one class.
    p.heap.slots_per_class = kKeySpace + kOpsPerBatch;
    p.heap.max_tx_ops = 2 * kOpsPerBatch;
    p.heap.max_tx_blob = 24 * kOpsPerBatch;
    return p;
}

using Oracle = std::map<std::uint64_t, MapOracleValue>;

std::vector<MapOp>
makeOps(std::uint32_t batch, std::uint64_t seed)
{
    Rng rng(fnv1aU64(batch + 1, fnv1aU64(seed)));
    std::vector<bool> used(kKeySpace + 1, false);
    std::vector<MapOp> ops;
    ops.reserve(kOpsPerBatch);
    for (std::uint32_t i = 0; i < kOpsPerBatch; ++i) {
        std::uint64_t key = rng.next() % kKeySpace + 1;
        while (used[key])
            key = key % kKeySpace + 1;
        used[key] = true;
        MapOp op;
        op.key = key;
        if (rng.chance(0.25)) {
            op.verb = MapOp::Verb::Del;
        } else {
            op.verb = MapOp::Verb::Put;
            op.len = 1 + static_cast<std::uint32_t>(rng.next() % kMaxLen);
            op.seed = rng.next();
        }
        ops.push_back(op);
    }
    return ops;
}

/** Host twin of GpmMap's acceptance policy (group = 8 ways). */
void
applyOps(Oracle &model, const std::vector<MapOp> &ops,
         std::uint32_t n_groups)
{
    for (const MapOp &op : ops) {
        auto it = model.find(op.key);
        if (op.verb == MapOp::Verb::Del) {
            if (it != model.end())
                model.erase(it);
            continue;
        }
        if (it == model.end()) {
            const std::uint64_t g = fnv1aU64(op.key) % n_groups;
            std::uint32_t occupied = 0;
            for (const auto &kv : model)
                if (fnv1aU64(kv.first) % n_groups == g)
                    ++occupied;
            if (occupied >= GpmMapParams::kWays)
                continue; // full group: plan rejects it too
        }
        model[op.key] = MapOracleValue{op.len, op.seed};
    }
}

std::vector<std::pair<std::uint64_t, MapOracleValue>>
asVector(const Oracle &model)
{
    return {model.begin(), model.end()};
}

class PmheapInvariant : public RecoveryInvariant
{
  public:
    std::string name() const override { return "pmheap"; }

    std::uint64_t
    doomedThreadPhases() const override
    {
        // Stage and publish launches both top out at one 8-thread
        // block per op, one phase each.
        return std::uint64_t(kOpsPerBatch) * GpmMapParams::kWays;
    }

    TortureOutcome
    run(const DomainSetup &setup, const CrashPoint &point,
        std::uint64_t seed, double survive_prob) override
    {
        TortureOutcome o;
        try {
            SimConfig cfg;
            cfg.exec_workers = setup.exec_workers;
            applyMediaConfig(cfg, setup.media);
            Machine m(cfg, setup.kind, 8_MiB, seed);
            if (setup.recorder)
                m.pool().setRecorder(setup.recorder);

            GpmMap map(m, mapParams());
            map.setup(true);
            const bool window = setup.open_persist_window &&
                                m.kind() == PlatformKind::Gpm;
            const std::uint32_t n_groups = map.params().n_groups;

            Oracle model;
            for (std::uint32_t b = 0; b < kDoomedBatch; ++b) {
                const std::vector<MapOp> ops = makeOps(b, seed);
                if (window)
                    gpmPersistBegin(m);
                map.runBatch(ops);
                if (window)
                    gpmPersistEnd(m);
                applyOps(model, ops, n_groups);
            }
            const Oracle reference = model; // doomed batch rolled back
            const std::vector<MapOp> doomed =
                makeOps(kDoomedBatch, seed);
            Oracle committed = model;
            applyOps(committed, doomed, n_groups);

            // Odd seeds arm the staging launch (record never commits:
            // recovery discards), even seeds the publication launch
            // (record durable: recovery rolls forward).
            const bool stage_armed = (seed % 2) != 0;
            if (window)
                gpmPersistBegin(m);
            try {
                if (stage_armed)
                    map.runBatch(doomed, point, {});
                else
                    map.runBatch(doomed, {}, point);
            } catch (const KernelCrashed &) {
                o.fired = true;
            }
            m.pool().crash(survive_prob);

            // Reboot: recovery configures its own persist window when
            // the crashed application never opened one.
            if (!window && m.kind() == PlatformKind::Gpm)
                gpmPersistBegin(m);
            map.recover();
            if (!window && m.kind() == PlatformKind::Gpm)
                gpmPersistEnd(m);
            o.recovery_ran = true;

            // Exact expected state: a fired staging crash means the
            // batch never committed; any other path means it did.
            const Oracle &mid =
                (o.fired && stage_armed) ? reference : committed;
            const bool mid_ok = map.durableEqualsOracle(asVector(mid));

            // Post-recovery service on the rebuilt free lists.
            Oracle final_model = mid;
            const std::vector<MapOp> tail =
                makeOps(kBatches - 1, seed);
            if (window)
                gpmPersistBegin(m);
            map.runBatch(tail);
            if (window)
                gpmPersistEnd(m);
            applyOps(final_model, tail, n_groups);
            const bool final_ok =
                map.durableEqualsOracle(asVector(final_model));

            o.strict_ok = mid_ok && final_ok;
            o.state_hash = map.durableStateHash();
            const PmPoolStats &st = m.pool().stats();
            o.crashes = st.crashes;
            o.crash_sub_extents = st.crash_sub_extents;
            o.crash_survivors = st.crash_survivors;
        } catch (const std::exception &e) {
            o.error = e.what();
        }
        return o;
    }
};

} // namespace

std::unique_ptr<RecoveryInvariant>
makePmheapInvariant()
{
    return std::make_unique<PmheapInvariant>();
}

} // namespace gpm
