/**
 * @file
 * Per-workload recovery invariants for the crash-torture matrix.
 *
 * A RecoveryInvariant adapts one workload's descriptor-armed crash
 * entry point (GpKvs::runCrashPoint and friends) to a common shape:
 * given a persist-domain setup, a concrete CrashPoint, an eviction
 * seed, and a line-survival probability, run the crash + recovery and
 * report what happened — did the crash fire, did recovery run, does
 * the recovered durable state satisfy the workload's strict
 * invariant, and what do the pool's crash counters say.
 *
 * Domain sweep mapping (one PersistDomain axis -> machine setup):
 *
 *   McDurable   = PlatformKind::Gpm  + persist window open  (GPM)
 *   LlcVolatile = PlatformKind::Gpm  + persist window closed (the
 *                 DDIO trap of section 6.1: fences order, nothing
 *                 guarantees durability)
 *   LlcDurable  = PlatformKind::GpmEadr (eADR: durable on arrival)
 *
 * The registry maps workload names to adapter factories so the runner
 * and the CLI driver can sweep by name.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crashtest/crash_scheduler.hpp"
#include "memsim/sim_config.hpp"
#include "platform/platform_kind.hpp"

namespace gpm {

class PmEventRecorder;

/** Machine-level realisation of one PersistDomain under test. */
struct DomainSetup {
    PersistDomain domain = PersistDomain::McDurable;
    PlatformKind kind = PlatformKind::Gpm;
    bool open_persist_window = true;

    /** When non-null, attached to the scenario's PmPool before the
     *  workload runs: gpmcheck captures the persistency event stream
     *  this way. The default torture path leaves it null, so the
     *  1200-scenario signature is untouched. */
    PmEventRecorder *recorder = nullptr;

    /** In-scenario executor width (SimConfig::exec_workers) for the
     *  scenario's Machine. Every observable — durable image, stats,
     *  tier bytes, the signature — is bit-identical at any width
     *  (DESIGN.md decisions #7/#8), so this knob only trades host
     *  threads for in-scenario wall-clock. */
    int exec_workers = 1;

    /** Media backend (SimConfig::media) for the scenario's Machine.
     *  Media models are timing-only — PmPool owns functional
     *  durability — so every backend reproduces the same functional
     *  outcomes and the same signature; like exec_workers, this is
     *  never folded into scenario keys. */
    MediaConfig media{};
};

/** The sweep mapping described in the file header. */
DomainSetup domainSetupFor(PersistDomain d);

/** Short stable name: "llc-volatile" / "mc-durable" / "llc-durable". */
const char *persistDomainName(PersistDomain d);

/** Inverse of persistDomainName; throws FatalError on unknown names. */
PersistDomain parsePersistDomain(const std::string &name);

/** What one crash + recovery scenario produced. */
struct TortureOutcome {
    bool fired = false;         ///< the armed crash point triggered
    bool recovery_ran = false;  ///< the workload's recovery executed
    bool strict_ok = false;     ///< durable state passed the invariant
    std::uint64_t state_hash = 0;  ///< FNV over recovered durable state
    std::string error;          ///< nonempty: the scenario threw

    // PmPool crash-model counters, for runner consistency checks.
    std::uint64_t crashes = 0;
    std::uint64_t crash_sub_extents = 0;  ///< 128 B tearing decisions
    std::uint64_t crash_survivors = 0;    ///< sub-extents that survived
};

/** One workload adapted to the torture matrix. */
class RecoveryInvariant
{
  public:
    virtual ~RecoveryInvariant() = default;

    /** Registry name (also the CLI --workloads token). */
    virtual std::string name() const = 0;

    /**
     * Thread phases a clean run of the *doomed* kernel executes —
     * the denominator CrashSpec fractions materialize against.
     */
    virtual std::uint64_t doomedThreadPhases() const = 0;

    /** Run one scenario. Must not throw: failures land in error. */
    virtual TortureOutcome run(const DomainSetup &setup,
                               const CrashPoint &point,
                               std::uint64_t seed,
                               double survive_prob) = 0;
};

/** Names of every registered workload adapter, in sweep order.
 *  Extended adapters ("serve") are reachable via makeInvariant and
 *  the CLI --workloads flag but stay out of this default axis, which
 *  keeps the pinned default/scale sweep signatures stable. */
std::vector<std::string> registeredInvariants();

/** Instantiate an adapter; throws FatalError on unknown names. */
std::unique_ptr<RecoveryInvariant> makeInvariant(
    const std::string &name);

/** Extended (opt-in) adapter names reachable via makeInvariant and
 *  --workloads but excluded from the default axis. */
std::vector<std::string> extendedInvariants();

/** The "serve" adapter: a mid-traffic power failure inside the
 *  ServiceEngine (src/service) — acknowledged-write durability across
 *  key-sharded multi-pool pipelines. Defined in serve_invariant.cpp. */
std::unique_ptr<RecoveryInvariant> makeServeInvariant();

/** The "pmheap" adapter: GpmHeap/GpmMap allocator + container crash
 *  consistency (leak and double-allocation checked against a host
 *  oracle). Defined in pmheap_invariant.cpp. */
std::unique_ptr<RecoveryInvariant> makePmheapInvariant();

} // namespace gpm
