/**
 * @file
 * Deterministic crash-point enumeration for the torture matrix.
 *
 * A CrashSpec is an *abstract* crash point: either a fraction of the
 * doomed kernel's thread phases, or an exact persist-boundary event
 * (the Nth system-scope fence, just before or just after it persists;
 * or the Nth PM store). Fractions probe bulk mid-kernel state;
 * boundary events pin the crash to the exact instants the recovery
 * protocols care about — between an HCL chunk store and its fence,
 * between a log-tail bump and the fence that seals it, between a
 * checkpoint copy and its flip.
 *
 * Specs are workload-agnostic; materialize() resolves one against a
 * concrete kernel's thread-phase total. The scheduler enumerates a
 * grid of specs and parses the CLI grammar:
 *
 *     frac:<f>            crash after f * total thread phases
 *     before-fence:<n>    just before the nth fence persists
 *     after-fence:<n>     just after the nth fence persisted
 *     after-store:<n>     just after the nth PM store landed
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/kernel.hpp"

namespace gpm {

/** One abstract crash point of the matrix. */
struct CrashSpec {
    enum class Kind : std::uint8_t {
        Fraction,     ///< after frac * total thread phases
        BeforeFence,  ///< just before the nth system fence persists
        AfterFence,   ///< just after the nth system fence persisted
        AfterStore,   ///< just after the nth PM store landed
    };

    Kind kind = Kind::Fraction;
    double fraction = 0.5;    ///< Fraction only
    std::uint64_t count = 1;  ///< event ordinal (1-based), events only

    /** Stable label, identical to the parse grammar. */
    std::string label() const;

    /**
     * Resolve against a kernel whose full run executes
     * @p total_thread_phases thread phases. Event specs are already
     * concrete; fractions become afterThreadPhases(frac * total).
     */
    CrashPoint materialize(std::uint64_t total_thread_phases) const;
};

/** The crash-point grid swept by the matrix. */
struct CrashGrid {
    std::vector<double> fractions;             ///< frac:<f> points
    std::vector<std::uint64_t> fence_counts;   ///< before+after each
    std::vector<std::uint64_t> store_counts;   ///< after-store:<n>

    /**
     * Default grid: early/mid/late fractions plus the first fences
     * (both sides — the just-before/just-after persist boundaries)
     * and an early store. 8 specs.
     */
    static CrashGrid defaults();

    /**
     * Scale grid for 10k+ scenario sweeps (gpmtorture --scale): every
     * 5% thread-phase fraction, the first three fences (both sides)
     * and five store ordinals. 30 specs; with the default workload,
     * domain, seed and survival axes widened to 12 seeds this yields
     * 10800 scenarios. Parallel crash-armed execution (decision #8) is
     * what makes this tractable as a standing oracle.
     */
    static CrashGrid fine();
};

/** Enumerates and parses crash specs. */
class CrashScheduler
{
  public:
    /** All specs of @p grid, in deterministic order. */
    static std::vector<CrashSpec> enumerate(const CrashGrid &grid);

    /** Parse one grammar token; throws FatalError on bad syntax. */
    static CrashSpec parse(const std::string &token);

    /** Parse a comma-separated list of grammar tokens. */
    static std::vector<CrashSpec> parseList(const std::string &tokens);
};

} // namespace gpm
