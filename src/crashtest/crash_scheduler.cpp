#include "crashtest/crash_scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/status.hpp"

namespace gpm {

std::string
CrashSpec::label() const
{
    char buf[48];
    switch (kind) {
      case Kind::Fraction:
        std::snprintf(buf, sizeof buf, "frac:%.2f", fraction);
        break;
      case Kind::BeforeFence:
        std::snprintf(buf, sizeof buf, "before-fence:%llu",
                      static_cast<unsigned long long>(count));
        break;
      case Kind::AfterFence:
        std::snprintf(buf, sizeof buf, "after-fence:%llu",
                      static_cast<unsigned long long>(count));
        break;
      case Kind::AfterStore:
        std::snprintf(buf, sizeof buf, "after-store:%llu",
                      static_cast<unsigned long long>(count));
        break;
    }
    return buf;
}

CrashPoint
CrashSpec::materialize(std::uint64_t total_thread_phases) const
{
    switch (kind) {
      case Kind::BeforeFence:
        return CrashPoint::beforeFence(count);
      case Kind::AfterFence:
        return CrashPoint::afterFence(count);
      case Kind::AfterStore:
        return CrashPoint::afterPmStore(count);
      case Kind::Fraction:
        break;
    }
    const double f = std::clamp(fraction, 0.0, 1.0);
    return CrashPoint::afterThreadPhases(static_cast<std::uint64_t>(
        f * static_cast<double>(total_thread_phases)));
}

CrashGrid
CrashGrid::defaults()
{
    CrashGrid g;
    g.fractions = {0.1, 0.5, 0.9};
    g.fence_counts = {1, 2};
    g.store_counts = {3};
    return g;
}

CrashGrid
CrashGrid::fine()
{
    CrashGrid g;
    // 0.05 steps, computed as n/20 so the labels ("frac:0.35") round
    // exactly and the grid is reproducible from its printed form.
    for (int n = 1; n <= 19; ++n)
        g.fractions.push_back(static_cast<double>(n) / 20.0);
    g.fence_counts = {1, 2, 3};
    g.store_counts = {1, 2, 3, 5, 8};
    return g;
}

std::vector<CrashSpec>
CrashScheduler::enumerate(const CrashGrid &grid)
{
    std::vector<CrashSpec> specs;
    for (const double f : grid.fractions)
        specs.push_back({CrashSpec::Kind::Fraction, f, 0});
    for (const std::uint64_t n : grid.fence_counts) {
        specs.push_back({CrashSpec::Kind::BeforeFence, 0.0, n});
        specs.push_back({CrashSpec::Kind::AfterFence, 0.0, n});
    }
    for (const std::uint64_t n : grid.store_counts)
        specs.push_back({CrashSpec::Kind::AfterStore, 0.0, n});
    return specs;
}

CrashSpec
CrashScheduler::parse(const std::string &token)
{
    const auto colon = token.find(':');
    GPM_REQUIRE(colon != std::string::npos && colon + 1 < token.size(),
                "crash spec '", token, "': expected <kind>:<value>");
    const std::string head = token.substr(0, colon);
    const std::string val = token.substr(colon + 1);

    CrashSpec s;
    if (head == "frac") {
        s.kind = CrashSpec::Kind::Fraction;
        char *end = nullptr;
        s.fraction = std::strtod(val.c_str(), &end);
        GPM_REQUIRE(end && *end == '\0' && s.fraction >= 0.0 &&
                        s.fraction <= 1.0,
                    "crash spec '", token,
                    "': fraction must be in [0, 1]");
        return s;
    }
    if (head == "before-fence")
        s.kind = CrashSpec::Kind::BeforeFence;
    else if (head == "after-fence")
        s.kind = CrashSpec::Kind::AfterFence;
    else if (head == "after-store")
        s.kind = CrashSpec::Kind::AfterStore;
    else
        GPM_REQUIRE(false, "crash spec '", token, "': unknown kind '",
                    head, "'");
    char *end = nullptr;
    s.count = std::strtoull(val.c_str(), &end, 10);
    GPM_REQUIRE(end && *end == '\0' && s.count >= 1,
                "crash spec '", token,
                "': event ordinal must be >= 1");
    return s;
}

std::vector<CrashSpec>
CrashScheduler::parseList(const std::string &tokens)
{
    std::vector<CrashSpec> specs;
    std::size_t pos = 0;
    while (pos <= tokens.size()) {
        std::size_t comma = tokens.find(',', pos);
        if (comma == std::string::npos)
            comma = tokens.size();
        if (comma > pos)
            specs.push_back(parse(tokens.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    GPM_REQUIRE(!specs.empty(), "empty crash-spec list");
    return specs;
}

} // namespace gpm
